#include "exp/dispatch/process_coordinator.h"

#include <stdexcept>

#include "core/replay_codec.h"
#include "exp/dispatch/wire.h"

#if defined(__unix__) || defined(__APPLE__)

#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <deque>
#include <thread>

#ifndef MSG_NOSIGNAL
#define MSG_NOSIGNAL 0
#endif

namespace ups::exp::dispatch {
namespace {

// A job that killed this many workers in a row is poisoned: mark it failed
// instead of burning the whole respawn budget on it.
constexpr int kMaxJobAttempts = 3;

// Default assign->result watchdog deadline. Generous — real replay jobs
// legitimately run minutes at RocketFuel scale — yet finite, so a hung
// worker can never hang the whole run. Tests injecting --hang-worker-after
// dial it down via backend_spec::worker_timeout_ms.
constexpr std::int64_t kDefaultWorkerTimeoutMs = 15 * 60 * 1000;

[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}

[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

// --- result payloads (after the leading `varint job`) ---------------------

void encode_memory_result(const shard_result& r,
                          std::vector<std::uint8_t>& out) {
  // The scenario is NOT serialized: the coordinator owns the plan and
  // restores slot.sc from it, so only measured data crosses the wire.
  put_varint(out, r.trace_packets);
  put_varint(out, zigzag(r.threshold_T));
  put_f64(out, r.original_wall_seconds);
  put_varint(out, r.original_peak_pool_packets);
  put_varint(out, r.original_flows_completed);
  put_varint(out, r.replays.size());
  for (const shard_replay& rep : r.replays) {
    out.push_back(static_cast<std::uint8_t>(rep.mode));
    put_f64(out, rep.wall_seconds);
    core::encode_replay_result(rep.result, out);
  }
}

void decode_memory_result(const std::uint8_t*& p, const std::uint8_t* end,
                          shard_result& slot) {
  slot.trace_packets = get_varint(p, end);
  slot.threshold_T = unzigzag(get_varint(p, end));
  slot.original_wall_seconds = get_f64(p, end);
  slot.original_peak_pool_packets = get_varint(p, end);
  slot.original_flows_completed = get_varint(p, end);
  const std::uint64_t n = get_varint(p, end);
  if (n > static_cast<std::uint64_t>(end - p)) {
    throw wire_error("memory result: replay count overruns frame");
  }
  slot.replays.assign(n, shard_replay{});
  for (shard_replay& rep : slot.replays) {
    if (p == end) throw wire_error("memory result: truncated replay mode");
    rep.mode = static_cast<core::replay_mode>(*p++);
    rep.wall_seconds = get_f64(p, end);
    rep.result = core::decode_replay_result(p, end);
  }
}

void encode_disk_result(const shard_replay& r,
                        std::vector<std::uint8_t>& out) {
  out.push_back(static_cast<std::uint8_t>(r.mode));
  put_f64(out, r.wall_seconds);
  core::encode_replay_result(r.result, out);
}

void decode_disk_result(const std::uint8_t*& p, const std::uint8_t* end,
                        shard_replay& slot) {
  if (p == end) throw wire_error("disk result: truncated mode byte");
  slot.mode = static_cast<core::replay_mode>(*p++);
  slot.wall_seconds = get_f64(p, end);
  slot.result = core::decode_replay_result(p, end);
}

// --- worker process -------------------------------------------------------

struct worker_config {
  std::uint64_t kill_after = 0;  // SIGKILL before reporting the K-th job
  std::uint64_t garble_at = 0;   // truncated garbage instead of K-th result
  std::uint64_t hang_after = 0;  // hang forever before reporting K-th job
};

[[noreturn]] void worker_main(const job_plan& plan, int fd,
                              const worker_config& cfg) {
  std::uint64_t completed = 0;
  frame f;
  std::vector<std::uint8_t> payload;
  for (;;) {
    bool got = false;
    try {
      got = recv_frame(fd, f);
    } catch (...) {
      _exit(10);
    }
    if (!got) _exit(11);  // coordinator vanished
    if (f.type == frame_type::shutdown) _exit(0);
    if (f.type != frame_type::assign) _exit(12);
    std::uint64_t first = 0;
    std::uint64_t count = 0;
    try {
      const std::uint8_t* p = f.payload.data();
      const std::uint8_t* end = p + f.payload.size();
      first = get_varint(p, end);
      count = get_varint(p, end);
    } catch (...) {
      _exit(13);
    }
    for (std::uint64_t j = first; j < first + count; ++j) {
      ++completed;
      if (cfg.garble_at != 0 && completed == cfg.garble_at) {
        // A header promising 64 payload bytes followed by 8 and EOF — the
        // truncated-result-frame failure the coordinator must classify as
        // a typed protocol error, not hang on.
        std::uint8_t garbage[kFrameHeaderBytes + 8] = {};
        const std::uint32_t len = 64;
        std::memcpy(garbage, &len, 4);
        garbage[4] = static_cast<std::uint8_t>(frame_type::result);
        (void)::send(fd, garbage, sizeof garbage, MSG_NOSIGNAL);
        _exit(16);
      }
      payload.clear();
      put_varint(payload, j);
      try {
        if (plan.disk) {
          encode_disk_result(run_disk_job(plan, static_cast<std::size_t>(j)),
                             payload);
        } else {
          encode_memory_result(
              run_memory_job(plan, static_cast<std::size_t>(j)), payload);
        }
      } catch (const std::exception& e) {
        payload.clear();
        put_varint(payload, j);
        const char* what = e.what();
        payload.insert(payload.end(), what, what + std::strlen(what));
        if (!send_frame(fd, frame_type::job_error, payload)) _exit(14);
        continue;
      }
      if (cfg.kill_after != 0 && completed == cfg.kill_after) {
        // Die with the finished job unreported: it is deterministically
        // in flight, so the coordinator's reassign/rerun path always runs.
        ::raise(SIGKILL);
      }
      if (cfg.hang_after != 0 && completed == cfg.hang_after) {
        // Go silent with the finished job unreported — the process stays
        // alive (no EOF, no wait status), so only the coordinator's
        // assign->result watchdog can notice and recover.
        for (;;) ::pause();
      }
      if (!send_frame(fd, frame_type::result, payload)) _exit(15);
    }
  }
}

// --- coordinator ----------------------------------------------------------

struct worker_state {
  pid_t pid = -1;
  int fd = -1;          // coordinator end of the socketpair
  int spawn_index = -1;
  frame_splitter rx;
  std::deque<std::size_t> in_flight;  // assigned, not yet acknowledged
  bool shutdown_sent = false;
  // Watchdog clock: reset at spawn, on every assignment, and on every byte
  // received. A worker holding work whose clock goes stale is timed out.
  std::chrono::steady_clock::time_point last_activity;
};

class coordinator {
 public:
  coordinator(const job_plan& plan, const backend_spec& spec)
      : plan_(plan), spec_(spec), jobs_(plan.job_count()) {}

  run_report run() {
    rep_.status.assign(jobs_, job_status::ok);
    rep_.errors.assign(jobs_, std::string());
    if (plan_.disk) {
      rep_.disk_replays.resize(jobs_);
    } else {
      rep_.results.resize(jobs_);
      for (std::size_t i = 0; i < jobs_; ++i) {
        rep_.results[i].sc = plan_.tasks[i].sc;
      }
    }
    if (jobs_ == 0) return std::move(rep_);

    std::size_t n = spec_.workers != 0
                        ? spec_.workers
                        : std::thread::hardware_concurrency();
    if (n == 0) n = 1;
    if (n > jobs_) n = jobs_;
    max_respawns_ = n + 2;
    for (std::size_t i = 0; i < jobs_; ++i) pending_.push_back(i);
    for (std::size_t w = 0; w < n; ++w) spawn_worker();

    std::vector<std::uint8_t> buf(256 * 1024);
    while (done_ < jobs_) {
      if (workers_.empty()) {
        if (respawns_ < max_respawns_) {
          spawn_worker();
          if (!rep_.worker_failures.empty()) {
            rep_.worker_failures.back().respawned = true;
          }
        } else {
          // Fabric exhausted: report what never ran instead of hanging.
          for (const std::size_t j : pending_) mark_not_run(j);
          pending_.clear();
          break;
        }
      }
      for (auto& w : workers_) assign_if_idle(w);

      std::vector<pollfd> fds;
      fds.reserve(workers_.size());
      for (const auto& w : workers_) {
        fds.push_back(pollfd{w.fd, POLLIN, 0});
      }
      const int rv = ::poll(fds.data(),
                            static_cast<nfds_t>(fds.size()), 500);
      if (rv < 0 && errno != EINTR) {
        throw std::runtime_error(std::string("dispatch poll failed: ") +
                                 std::strerror(errno));
      }
      // Service sockets by pid (worker indices shift as dead ones drop).
      for (const auto& pfd : fds) {
        if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
        worker_state* w = find_by_fd(pfd.fd);
        if (w == nullptr) continue;
        service(*w, buf);
      }
      reap_timed_out();
    }
    shutdown_all();
    return std::move(rep_);
  }

 private:
  void spawn_worker() {
    int sv[2];
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, sv) != 0) {
      throw std::runtime_error(std::string("socketpair failed: ") +
                               std::strerror(errno));
    }
#if defined(__APPLE__)
    const int on = 1;
    ::setsockopt(sv[0], SOL_SOCKET, SO_NOSIGPIPE, &on, sizeof on);
    ::setsockopt(sv[1], SOL_SOCKET, SO_NOSIGPIPE, &on, sizeof on);
#endif
    const int index = spawn_counter_++;
    if (index > 0) ++respawns_worth_counting_;  // informational only
    std::fflush(stdout);
    std::fflush(stderr);
    const pid_t pid = ::fork();
    if (pid < 0) {
      ::close(sv[0]);
      ::close(sv[1]);
      throw std::runtime_error(std::string("fork failed: ") +
                               std::strerror(errno));
    }
    if (pid == 0) {
      // Child: drop every other worker's socket so a sibling's EOF stays
      // visible to the coordinator the moment that sibling dies.
      for (const auto& w : workers_) ::close(w.fd);
      ::close(sv[0]);
      worker_config cfg;
      if (index == 0) {
        cfg.kill_after = spec_.kill_worker_after;
        cfg.garble_at = spec_.garble_result_at;
        cfg.hang_after = spec_.hang_worker_after;
      }
      worker_main(plan_, sv[1], cfg);  // noreturn
    }
    ::close(sv[1]);
    worker_state w;
    w.pid = pid;
    w.fd = sv[0];
    w.spawn_index = index;
    w.last_activity = std::chrono::steady_clock::now();
    workers_.push_back(std::move(w));
  }

  worker_state* find_by_fd(int fd) {
    for (auto& w : workers_) {
      if (w.fd == fd) return &w;
    }
    return nullptr;
  }

  // Guided self-scheduling: early assigns take big contiguous ranges, the
  // tail hands out single jobs so a slow range never straggles the run.
  void assign_if_idle(worker_state& w) {
    if (!w.in_flight.empty() || pending_.empty() || w.shutdown_sent) return;
    const std::size_t chunk = std::max<std::size_t>(
        1, pending_.size() / (2 * workers_.size()));
    const std::size_t first = pending_.front();
    pending_.pop_front();
    std::size_t count = 1;
    while (count < chunk && !pending_.empty() &&
           pending_.front() == first + count) {
      pending_.pop_front();
      ++count;
    }
    for (std::size_t k = 0; k < count; ++k) w.in_flight.push_back(first + k);
    w.last_activity = std::chrono::steady_clock::now();
    std::vector<std::uint8_t> payload;
    put_varint(payload, first);
    put_varint(payload, count);
    // A failed send means the worker is already dead; the jobs stay in its
    // in_flight list and the imminent EOF event reassigns them.
    (void)send_frame(w.fd, frame_type::assign, payload);
  }

  void service(worker_state& w, std::vector<std::uint8_t>& buf) {
    for (;;) {
      const ssize_t n = ::read(w.fd, buf.data(), buf.size());
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        fail_worker(w, worker_failure_kind::protocol_error,
                    std::string("socket read failed: ") +
                        std::strerror(errno));
        return;
      }
      if (n == 0) {
        handle_eof(w);
        return;
      }
      w.last_activity = std::chrono::steady_clock::now();
      w.rx.feed(buf.data(), static_cast<std::size_t>(n));
      try {
        frame f;
        while (w.rx.pop(f)) handle_frame(w, f);
      } catch (const std::exception& e) {
        fail_worker(w, worker_failure_kind::protocol_error, e.what());
        return;
      }
      if (static_cast<std::size_t>(n) < buf.size()) return;  // drained
    }
  }

  void handle_frame(worker_state& w, const frame& f) {
    const std::uint8_t* p = f.payload.data();
    const std::uint8_t* end = p + f.payload.size();
    if (f.type != frame_type::result && f.type != frame_type::job_error) {
      throw wire_error("coordinator received a coordinator-only frame");
    }
    const std::uint64_t job = get_varint(p, end);
    if (job >= jobs_) {
      throw wire_error("result frame names job " + std::to_string(job) +
                       " beyond the plan");
    }
    const auto it =
        std::find(w.in_flight.begin(), w.in_flight.end(),
                  static_cast<std::size_t>(job));
    if (it == w.in_flight.end()) {
      throw wire_error("result frame for job " + std::to_string(job) +
                       " this worker does not hold");
    }
    if (f.type == frame_type::job_error) {
      rep_.status[job] = job_status::failed;
      rep_.errors[job].assign(reinterpret_cast<const char*>(p),
                              static_cast<std::size_t>(end - p));
      if (rep_.errors[job].empty()) rep_.errors[job] = "job failed";
    } else if (plan_.disk) {
      decode_disk_result(p, end, rep_.disk_replays[job]);
    } else {
      decode_memory_result(p, end, rep_.results[job]);
      rep_.results[job].sc = plan_.tasks[job].sc;
    }
    w.in_flight.erase(it);
    ++done_;
  }

  void handle_eof(worker_state& w) {
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    const bool clean = w.shutdown_sent && w.in_flight.empty() &&
                       !w.rx.mid_frame() && WIFEXITED(status) &&
                       WEXITSTATUS(status) == 0;
    if (clean) {
      remove_worker(w.pid);
      return;
    }
    // Classification: the wait status names the death, a buffered partial
    // frame upgrades a quiet exit to a truncated-message protocol error.
    worker_failure_kind kind;
    int detail = 0;
    std::string msg;
    if (WIFSIGNALED(status)) {
      kind = worker_failure_kind::killed_by_signal;
      detail = WTERMSIG(status);
      msg = "worker killed by signal " + std::to_string(detail);
    } else if (w.rx.mid_frame()) {
      kind = worker_failure_kind::protocol_error;
      detail = WIFEXITED(status) ? WEXITSTATUS(status) : 0;
      msg = "worker closed its socket mid-frame (truncated result)";
    } else if (WIFEXITED(status) && WEXITSTATUS(status) != 0) {
      kind = worker_failure_kind::exit_code;
      detail = WEXITSTATUS(status);
      msg = "worker exited with status " + std::to_string(detail);
    } else {
      kind = worker_failure_kind::exited_early;
      msg = "worker exited before shutdown";
    }
    record_failure(w, kind, detail, msg, /*already_reaped=*/true);
  }

  // Stall watchdog: a worker holding assigned work yet silent on its
  // socket past the deadline is as gone as a crashed one — the job-purity
  // argument that justifies rerunning a dead worker's range covers a hung
  // worker's range identically. SIGKILL it (a reply arriving after the
  // range was reassigned would corrupt slot accounting) and classify
  // timed_out so the recovery log distinguishes hangs from crashes.
  void reap_timed_out() {
    const std::int64_t ms = spec_.worker_timeout_ms > 0
                                ? spec_.worker_timeout_ms
                                : kDefaultWorkerTimeoutMs;
    const auto now = std::chrono::steady_clock::now();
    std::vector<pid_t> stale;
    for (const auto& w : workers_) {
      if (w.in_flight.empty()) continue;
      const auto quiet = std::chrono::duration_cast<std::chrono::milliseconds>(
                             now - w.last_activity)
                             .count();
      if (quiet >= ms) stale.push_back(w.pid);
    }
    // fail_worker erases from workers_, so resolve each pid fresh.
    for (const pid_t pid : stale) {
      for (auto& w : workers_) {
        if (w.pid != pid) continue;
        fail_worker(w, worker_failure_kind::timed_out,
                    "worker silent for " + std::to_string(ms) +
                        " ms with assigned work (hung?)");
        break;
      }
    }
  }

  void fail_worker(worker_state& w, worker_failure_kind kind,
                   const std::string& msg) {
    ::kill(w.pid, SIGKILL);
    int status = 0;
    while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
    }
    record_failure(w, kind, /*detail=*/0, msg, /*already_reaped=*/true);
  }

  void record_failure(worker_state& w, worker_failure_kind kind, int detail,
                      const std::string& msg, bool already_reaped) {
    (void)already_reaped;
    worker_failure ev;
    ev.worker = w.spawn_index;
    ev.kind = kind;
    ev.detail = detail;
    ev.message = msg;
    // Reassign the dead worker's in-flight range: jobs are pure functions,
    // so a rerun on any worker reproduces the exact bytes this one would
    // have sent. A job on its last allowed attempt is poisoned instead.
    for (const std::size_t j : w.in_flight) {
      if (++attempts_[j] >= kMaxJobAttempts) {
        rep_.status[j] = job_status::failed;
        rep_.errors[j] =
            "job killed " + std::to_string(attempts_[j]) +
            " workers in a row (last: " + msg + ")";
        ++done_;
      } else {
        ev.reassigned_jobs.push_back(j);
        pending_.push_front(j);
      }
    }
    rep_.worker_failures.push_back(std::move(ev));
    remove_worker(w.pid);
  }

  void mark_not_run(std::size_t j) {
    rep_.status[j] = job_status::not_run;
    rep_.errors[j] = "dispatch fabric exhausted its respawn budget";
    ++done_;
  }

  void remove_worker(pid_t pid) {
    for (auto it = workers_.begin(); it != workers_.end(); ++it) {
      if (it->pid != pid) continue;
      ::close(it->fd);
      workers_.erase(it);
      return;
    }
  }

  void shutdown_all() {
    for (auto& w : workers_) {
      w.shutdown_sent = true;
      (void)send_frame(w.fd, frame_type::shutdown, {});
    }
    for (auto& w : workers_) {
      ::close(w.fd);
      int status = 0;
      while (::waitpid(w.pid, &status, 0) < 0 && errno == EINTR) {
      }
    }
    workers_.clear();
  }

  const job_plan& plan_;
  const backend_spec& spec_;
  const std::size_t jobs_;
  run_report rep_;
  std::deque<std::size_t> pending_;
  std::vector<worker_state> workers_;
  std::vector<int> attempts_ = std::vector<int>(jobs_, 0);
  std::size_t done_ = 0;
  int spawn_counter_ = 0;
  std::size_t respawns_ = 0;
  std::size_t respawns_worth_counting_ = 0;
  std::size_t max_respawns_ = 0;
};

}  // namespace

run_report run_process(const job_plan& plan, const backend_spec& spec) {
  coordinator c(plan, spec);
  return c.run();
}

}  // namespace ups::exp::dispatch

#else  // non-unix

namespace ups::exp::dispatch {

run_report run_process(const job_plan&, const backend_spec&) {
  throw std::runtime_error(
      "dispatch process backend requires a unix platform "
      "(fork/socketpair); use thread or serial here");
}

}  // namespace ups::exp::dispatch

#endif
