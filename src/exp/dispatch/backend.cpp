#include "exp/dispatch/backend.h"

#include <atomic>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exp/dispatch/process_coordinator.h"
#include "exp/replay_experiment.h"

namespace ups::exp::dispatch {

const char* to_string(backend_kind k) {
  switch (k) {
    case backend_kind::serial: return "serial";
    case backend_kind::thread: return "thread";
    case backend_kind::process: return "process";
  }
  return "?";
}

const char* to_string(job_status s) {
  switch (s) {
    case job_status::ok: return "ok";
    case job_status::failed: return "failed";
    case job_status::not_run: return "not_run";
  }
  return "?";
}

const char* to_string(worker_failure_kind k) {
  switch (k) {
    case worker_failure_kind::exited_early: return "exited_early";
    case worker_failure_kind::exit_code: return "exit_code";
    case worker_failure_kind::killed_by_signal: return "killed_by_signal";
    case worker_failure_kind::protocol_error: return "protocol_error";
    case worker_failure_kind::timed_out: return "timed_out";
  }
  return "?";
}

backend_spec backend_spec::parse(const std::string& s) {
  backend_spec spec;
  std::string kind = s;
  const auto colon = s.find(':');
  if (colon != std::string::npos) {
    kind = s.substr(0, colon);
    const std::string count = s.substr(colon + 1);
    if (count.empty() ||
        count.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("dispatch spec '" + s +
                                  "': worker count must be a number");
    }
    spec.workers = std::stoull(count);
  }
  if (kind == "serial") {
    spec.kind = backend_kind::serial;
    if (colon != std::string::npos) {
      throw std::invalid_argument("dispatch spec '" + s +
                                  "': serial takes no worker count");
    }
  } else if (kind == "thread") {
    spec.kind = backend_kind::thread;
  } else if (kind == "process") {
    spec.kind = backend_kind::process;
  } else {
    throw std::invalid_argument(
        "dispatch spec '" + s +
        "': expected serial | thread[:N] | process[:N]");
  }
  return spec;
}

job_plan job_plan::from_tasks(std::vector<shard_task> tasks,
                              shard_options opt) {
  job_plan p;
  p.tasks = std::move(tasks);
  p.options = opt;
  return p;
}

job_plan job_plan::from_disk(disk_shard_task task, shard_options opt) {
  job_plan p;
  p.disk = std::move(task);
  p.options = opt;
  return p;
}

bool run_report::all_ok() const {
  for (const job_status s : status) {
    if (s != job_status::ok) return false;
  }
  return true;
}

std::size_t run_report::jobs_failed() const {
  std::size_t n = 0;
  for (const job_status s : status) {
    if (s != job_status::ok) ++n;
  }
  return n;
}

void run_report::throw_if_failed() const {
  for (std::size_t j = 0; j < status.size(); ++j) {
    if (status[j] == job_status::ok) continue;
    throw std::runtime_error(
        "dispatch job " + std::to_string(j) + " " +
        std::string(to_string(status[j])) +
        (errors[j].empty() ? "" : (": " + errors[j])));
  }
}

job_outcomes run_jobs(std::size_t jobs, std::size_t workers,
                      const std::function<void(std::size_t)>& body) {
  job_outcomes out;
  out.status.assign(jobs, job_status::ok);
  out.errors.assign(jobs, std::string());
  if (jobs == 0) return out;
  // Each job owns its pre-assigned slot in both vectors, so recording a
  // failure is race-free without a lock — and unlike the retired
  // parallel_for_jobs, one throwing job never abandons the rest.
  const auto guarded = [&](std::size_t i) {
    try {
      body(i);
    } catch (const std::exception& e) {
      out.status[i] = job_status::failed;
      out.errors[i] = e.what();
    } catch (...) {
      out.status[i] = job_status::failed;
      out.errors[i] = "unknown exception";
    }
  };
  if (workers == 0) workers = std::thread::hardware_concurrency();
  if (workers > jobs) workers = jobs;
  if (workers <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) guarded(i);
    return out;
  }
  std::atomic<std::size_t> next{0};
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      guarded(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t t = 0; t < workers; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return out;
}

shard_result run_memory_job(const job_plan& plan, std::size_t job) {
  const shard_task& t = plan.tasks[job];
  const auto t0 = std::chrono::steady_clock::now();
  const original_run orig = run_original(t.sc);
  shard_result r;
  r.sc = t.sc;
  r.trace_packets = orig.trace.packets.size();
  r.threshold_T = orig.threshold_T;
  r.original_wall_seconds = wall_seconds_since(t0);
  r.original_peak_pool_packets = orig.peak_pool_packets;
  r.original_flows_completed = orig.flows_completed;
  r.replays.resize(t.modes.size());
  for (std::size_t m = 0; m < t.modes.size(); ++m) {
    const auto tm = std::chrono::steady_clock::now();
    r.replays[m].mode = t.modes[m];
    r.replays[m].result = run_replay(orig, t.modes[m],
                                     plan.options.keep_outcomes,
                                     plan.options.injection,
                                     plan.options.replay_flow);
    r.replays[m].wall_seconds = wall_seconds_since(tm);
  }
  return r;
}

shard_replay run_disk_job(const job_plan& plan, std::size_t job) {
  const disk_shard_task& d = *plan.disk;
  const auto t0 = std::chrono::steady_clock::now();
  shard_replay out;
  out.mode = d.modes[job];
  out.result = run_replay_file(d.trace_path, d.topology, d.threshold_T,
                               out.mode, plan.options.keep_outcomes,
                               plan.options.injection,
                               net::trace_access::sequential,
                               plan.options.replay_flow);
  out.wall_seconds = wall_seconds_since(t0);
  return out;
}

namespace {

// Serial/thread backends. The memory plan keeps the PR-2 two-stage shape —
// originals fan out over tasks, then replays over the denser (task × mode)
// axis — because a plan with fewer tasks than workers still deserves full
// occupancy in stage 2. Per-job status folds to the task slot.
run_report run_local(const job_plan& plan, std::size_t workers) {
  run_report rep;
  const std::size_t jobs = plan.job_count();
  rep.status.assign(jobs, job_status::ok);
  rep.errors.assign(jobs, std::string());

  if (plan.disk) {
    rep.disk_replays.resize(jobs);
    auto out = run_jobs(jobs, workers, [&](std::size_t m) {
      rep.disk_replays[m] = run_disk_job(plan, m);
    });
    rep.status = std::move(out.status);
    rep.errors = std::move(out.errors);
    return rep;
  }

  const auto& tasks = plan.tasks;
  rep.results.resize(jobs);
  std::vector<original_run> originals(jobs);

  // Stage 1: one original recording per scenario. Each job builds its own
  // simulator + network inside run_original; nothing is shared.
  auto stage1 = run_jobs(jobs, workers, [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    originals[i] = run_original(tasks[i].sc);
    shard_result& r = rep.results[i];
    r.sc = tasks[i].sc;
    r.trace_packets = originals[i].trace.packets.size();
    r.threshold_T = originals[i].threshold_T;
    r.original_wall_seconds = wall_seconds_since(t0);
    r.original_peak_pool_packets = originals[i].peak_pool_packets;
    r.original_flows_completed = originals[i].flows_completed;
    r.replays.resize(tasks[i].modes.size());
  });
  rep.status = std::move(stage1.status);
  rep.errors = std::move(stage1.errors);

  // Stage 2: replays fan out over (scenario × mode) for every task whose
  // original succeeded. The recorded traces are shared read-only; every
  // job owns its replay network and writes its pre-assigned slot, so
  // output order never depends on scheduling.
  std::vector<std::pair<std::size_t, std::size_t>> pairs;  // (task, mode)
  for (std::size_t i = 0; i < jobs; ++i) {
    if (rep.status[i] != job_status::ok) continue;
    rep.results[i].sc = tasks[i].sc;
    for (std::size_t m = 0; m < tasks[i].modes.size(); ++m) {
      pairs.emplace_back(i, m);
    }
  }
  auto stage2 = run_jobs(pairs.size(), workers, [&](std::size_t j) {
    const auto [i, m] = pairs[j];
    const auto t0 = std::chrono::steady_clock::now();
    shard_replay& out = rep.results[i].replays[m];
    out.mode = tasks[i].modes[m];
    out.result = run_replay(originals[i], out.mode,
                            plan.options.keep_outcomes,
                            plan.options.injection,
                            plan.options.replay_flow);
    out.wall_seconds = wall_seconds_since(t0);
  });
  for (std::size_t j = 0; j < pairs.size(); ++j) {
    if (stage2.status[j] == job_status::ok) continue;
    const auto [i, m] = pairs[j];
    if (rep.status[i] == job_status::ok) {
      rep.status[i] = job_status::failed;
      rep.errors[i] = "replay mode " +
                      std::string(core::to_string(tasks[i].modes[m])) +
                      ": " + stage2.errors[j];
    }
  }
  return rep;
}

}  // namespace

run_report run(const job_plan& plan, const backend_spec& spec) {
  if (plan.disk && !plan.tasks.empty()) {
    throw std::invalid_argument(
        "job_plan: populate tasks or disk, not both");
  }
  switch (spec.kind) {
    case backend_kind::serial: return run_local(plan, 1);
    case backend_kind::thread: return run_local(plan, spec.workers);
    case backend_kind::process: return run_process(plan, spec);
  }
  throw std::invalid_argument("unknown backend kind");
}

}  // namespace ups::exp::dispatch
