// Length-prefixed frame protocol between the dispatch coordinator and its
// worker processes (the tcp_framer idiom: every message is a u32 payload
// length, a one-byte type tag, then the payload — so a receiver can split a
// byte stream into frames without understanding any payload).
//
//   frame     := u32 payload_len (LE) · u8 type · payload[payload_len]
//   ASSIGN    1  coordinator -> worker   varint first_job · varint count
//   RESULT    2  worker -> coordinator   varint job · job payload
//   JOB_ERROR 3  worker -> coordinator   varint job · utf8 message (to end)
//   SHUTDOWN  4  coordinator -> worker   (empty)
//
// Two receive paths share one validator: workers block in recv_frame() on
// their only socket; the coordinator multiplexes N workers through poll()
// and feeds raw reads into a frame_splitter, popping complete frames as
// they form. Malformed input — oversized or impossible length, unknown
// type tag — throws wire_error (typed, never a hang or UB); a clean EOF in
// the middle of a frame is the caller's signal that the peer died
// mid-message (frame_splitter::mid_frame).
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ups::exp::dispatch {

// Structural damage on the coordinator/worker byte stream.
class wire_error : public std::runtime_error {
 public:
  explicit wire_error(const std::string& what) : std::runtime_error(what) {}
};

enum class frame_type : std::uint8_t {
  assign = 1,
  result = 2,
  job_error = 3,
  shutdown = 4,
};

struct frame {
  frame_type type = frame_type::shutdown;
  std::vector<std::uint8_t> payload;
};

// A result frame carries a whole outcome vector (~10 B per replayed
// packet), so the bound is generous; anything larger is a garbled length
// field, not a real message.
inline constexpr std::uint32_t kMaxFramePayload = 1u << 30;
inline constexpr std::size_t kFrameHeaderBytes = 5;  // u32 length + u8 type

// --- payload scalar helpers (LEB128 varints, fixed little-endian f64) -----
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);
[[nodiscard]] std::uint64_t get_varint(const std::uint8_t*& p,
                                       const std::uint8_t* end);
void put_f64(std::vector<std::uint8_t>& out, double v);
[[nodiscard]] double get_f64(const std::uint8_t*& p, const std::uint8_t* end);

// --- blocking frame I/O (worker side) -------------------------------------
// Writes one frame; returns false if the peer is gone (EPIPE/ECONNRESET —
// sends use MSG_NOSIGNAL, so a dead coordinator never raises SIGPIPE).
bool send_frame(int fd, frame_type type,
                const std::vector<std::uint8_t>& payload);
// Reads exactly one frame. Returns false on clean EOF at a frame boundary;
// throws wire_error on EOF mid-frame or a malformed header.
bool recv_frame(int fd, frame& out);

// --- incremental splitter (coordinator side) ------------------------------
// feed() raw bytes as poll() delivers them; pop() yields complete frames.
class frame_splitter {
 public:
  void feed(const std::uint8_t* data, std::size_t n);
  // Extracts the next complete frame into `out`; false if more bytes are
  // needed. Throws wire_error as soon as a header is malformed, even if
  // the declared payload never arrives — a garbage length must fail fast,
  // not hang waiting for 4 GB.
  bool pop(frame& out);
  // True when a partial frame is buffered — at peer EOF this is the
  // difference between a clean close and a truncated result frame.
  [[nodiscard]] bool mid_frame() const { return buf_.size() > pos_; }

 private:
  std::vector<std::uint8_t> buf_;
  std::size_t pos_ = 0;  // consumed prefix, compacted opportunistically
};

// Validates a header's length+type, throwing wire_error on damage (shared
// by recv_frame and frame_splitter).
[[nodiscard]] std::uint32_t check_frame_header(
    const std::uint8_t header[kFrameHeaderBytes]);

}  // namespace ups::exp::dispatch
