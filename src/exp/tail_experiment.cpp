#include "exp/tail_experiment.h"

#include "core/heuristics.h"
#include "core/registry.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "traffic/size_dist.h"
#include "traffic/source.h"
#include "traffic/workload.h"

namespace ups::exp {

const char* to_string(tail_variant v) {
  switch (v) {
    case tail_variant::fifo: return "FIFO";
    case tail_variant::lstf_uniform_slack: return "LSTF";
  }
  return "?";
}

tail_result run_tail(tail_variant v, const tail_config& cfg) {
  const auto topology = make_topology(cfg.topo);

  sim::simulator sim;
  net::network net(sim);
  topo::populate(topology, net);
  net.set_buffer_bytes(cfg.buffer_bytes);
  const auto kind = v == tail_variant::fifo ? core::sched_kind::fifo
                                            : core::sched_kind::lstf;
  net.set_scheduler_factory(core::make_factory(kind, cfg.seed, &net));
  net.build();

  tail_result res;
  res.label = to_string(v);
  res.delay_s.reserve(cfg.packet_budget);
  net.hooks().on_egress = [&res, &sim](const net::packet& p,
                                       sim::time_ps now) {
    res.delay_s.add(sim::to_seconds(now - p.created_at));
    (void)sim;
  };

  const auto dist = traffic::default_heavy_tailed();
  traffic::workload_config wcfg;
  wcfg.utilization = cfg.utilization;
  wcfg.seed = cfg.seed;
  wcfg.packet_budget = cfg.packet_budget;
  auto wl = traffic::generate(net, topology, *dist, wcfg);

  core::tail_slack slack_policy;  // uniform 1 s: LSTF == FIFO+
  traffic::source_options sopt;
  if (v == tail_variant::lstf_uniform_slack) {
    sopt.stamper = [&slack_policy](net::packet& p) {
      p.slack = slack_policy.slack_for();
    };
  }
  traffic::open_loop_source app(net, std::move(wl.flows), std::move(sopt));
  sim.run();

  res.mean_s = res.delay_s.mean();
  res.p99_s = res.delay_s.quantile(0.99);
  res.p999_s = res.delay_s.quantile(0.999);
  res.drops = net.stats().dropped;
  return res;
}

}  // namespace ups::exp
