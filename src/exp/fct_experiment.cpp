#include "exp/fct_experiment.h"

#include <algorithm>
#include <stdexcept>

#include "core/heuristics.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "traffic/size_dist.h"
#include "traffic/workload.h"

namespace ups::exp {

const char* to_string(fct_variant v) {
  switch (v) {
    case fct_variant::fifo: return "FIFO";
    case fct_variant::srpt: return "SRPT";
    case fct_variant::sjf: return "SJF";
    case fct_variant::lstf: return "LSTF";
  }
  return "?";
}

std::vector<std::uint64_t> default_fct_buckets() {
  // Figure 2's x-axis: multiples of the 1460 B MSS, then the heavy tail.
  return {1'460,  2'920,   4'380,    7'300,     10'220,
          58'400, 105'120, 1'051'200, 3'153'600};
}

fct_result run_fct(fct_variant v, const fct_config& cfg) {
  auto topology = make_topology(cfg.topo);
  if (cfg.prop_delay_scale != 1.0) {
    topology.scale_delays(cfg.prop_delay_scale);
  }

  sim::simulator sim;
  net::network net(sim);
  topo::populate(topology, net);
  net.set_buffer_bytes(cfg.buffer_bytes);

  core::sched_kind kind = core::sched_kind::fifo;
  switch (v) {
    case fct_variant::fifo: kind = core::sched_kind::fifo; break;
    case fct_variant::srpt: kind = core::sched_kind::srpt_pfabric; break;
    case fct_variant::sjf: kind = core::sched_kind::sjf_pfabric; break;
    case fct_variant::lstf: kind = core::sched_kind::lstf; break;
  }
  net.set_scheduler_factory(core::make_factory(kind, cfg.seed, &net));
  net.build();

  // The web-search-like distribution (mean ~1.9 MB) keeps long flows alive
  // long enough to congest the bottlenecks while short flows contend — the
  // regime in which Figure 2's schedulers separate.
  const auto dist = traffic::web_search();
  traffic::workload_config wcfg;
  wcfg.utilization = cfg.utilization;
  wcfg.seed = cfg.seed;
  wcfg.packet_budget = cfg.packet_budget;
  const auto wl = traffic::generate(net, topology, *dist, wcfg);

  transport::tcp_config tcfg;
  transport::tcp_manager tcp(net, tcfg);

  core::fct_slack slack_policy;
  for (const auto& f : wl.flows) {
    transport::header_stamper stamper;
    if (v == fct_variant::lstf) {
      const sim::time_ps s = slack_policy.slack_for(f.size_bytes);
      stamper = [s](net::packet& p) { p.slack = s; };
    }
    tcp.start_flow(f.id, f.src, f.dst, f.size_bytes, f.start,
                   std::move(stamper));
  }
  sim.run();

  if (tcp.flows_in_progress() != 0) {
    throw std::runtime_error("fct experiment: flows failed to complete");
  }

  fct_result res;
  res.label = to_string(v);
  res.bucket_edges = default_fct_buckets();
  res.bucket_mean_fct_s.assign(res.bucket_edges.size(), 0.0);
  res.bucket_counts.assign(res.bucket_edges.size(), 0);
  double total = 0.0;
  for (const auto& c : tcp.completions()) {
    const double fct_s = sim::to_seconds(c.fct());
    total += fct_s;
    ++res.flows;
    const auto it = std::lower_bound(res.bucket_edges.begin(),
                                     res.bucket_edges.end(), c.size_bytes);
    const auto idx = static_cast<std::size_t>(
        std::min<std::ptrdiff_t>(it - res.bucket_edges.begin(),
                                 static_cast<std::ptrdiff_t>(
                                     res.bucket_edges.size() - 1)));
    res.bucket_mean_fct_s[idx] += fct_s;
    ++res.bucket_counts[idx];
  }
  for (std::size_t i = 0; i < res.bucket_edges.size(); ++i) {
    if (res.bucket_counts[i] > 0) {
      res.bucket_mean_fct_s[i] /= static_cast<double>(res.bucket_counts[i]);
    }
  }
  res.overall_mean_fct_s =
      res.flows == 0 ? 0.0 : total / static_cast<double>(res.flows);
  res.drops = net.stats().dropped;
  return res;
}

}  // namespace ups::exp
