// §3.3 — asymptotic fairness (Figure 4): 90 long-lived TCP flows on the
// Internet2 topology with 10 Gbps edges and shrunken propagation delays;
// Jain's fairness index of per-millisecond flow throughputs over time, for
// FIFO, FQ and LSTF with virtual-clock slack at several r_est values.
//
// Per the paper, "the topology is such that the fair share rate of each
// flow on each link in the core is around 1 Gbps (shared by up to 13
// flows)": we realize that property by sizing each core link to
// (#crossing flows x 1 Gbps).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/scenario.h"
#include "sim/units.h"

namespace ups::exp {

struct fairness_config {
  std::uint64_t seed = 1;
  int flows = 90;
  sim::time_ps start_jitter = 5 * sim::kMillisecond;
  sim::time_ps horizon = 20 * sim::kMillisecond;
  sim::time_ps sample_every = sim::kMillisecond;
  sim::bits_per_sec fair_share = sim::kGbps;
  double prop_delay_scale = 0.01;  // paper shrinks delays for scalability
};

enum class fairness_variant : std::uint8_t { fifo, fq, lstf };

struct fairness_result {
  std::string label;
  sim::bits_per_sec r_est = 0;  // only for LSTF variants
  std::vector<double> time_ms;
  std::vector<double> jain;
  double final_jain = 0.0;
};

[[nodiscard]] fairness_result run_fairness(fairness_variant v,
                                           sim::bits_per_sec r_est,
                                           const fairness_config& cfg);

// §3.3's weighted extension: "we can also extend the slack assignment
// heuristic to achieve weighted fairness by using different values of
// r_est for different flows, in proportion to the desired weights."
// Flows are split into two classes; class 1 uses weight x r_est. Returns
// the measured class-throughput ratio over the second half of the horizon
// (expected to approach `weight`).
struct weighted_fairness_result {
  double measured_ratio = 0.0;  // class1 mean throughput / class0 mean
  double class0_mbps = 0.0;
  double class1_mbps = 0.0;
};

[[nodiscard]] weighted_fairness_result run_weighted_fairness(
    double weight, sim::bits_per_sec r_est, const fairness_config& cfg);

}  // namespace ups::exp
