#include "exp/fairness_experiment.h"

#include <algorithm>
#include <map>
#include <memory>
#include <utility>

#include "core/heuristics.h"
#include "core/registry.h"
#include "net/network.h"
#include "sim/rng.h"
#include "sim/simulator.h"
#include "stats/summary.h"
#include "topo/basic.h"
#include "topo/internet2.h"
#include "transport/tcp.h"

namespace ups::exp {

namespace {

struct placement {
  topo::topology topology;
  std::vector<std::pair<net::node_id, net::node_id>> pairs;
  std::vector<sim::time_ps> starts;
};

// Places `flows` host pairs (distinct edge routers, seeded) and sizes each
// core link to (#crossing flows x fair_share).
placement make_placement(const fairness_config& cfg) {
  topo::internet2_config icfg;
  icfg.access_rate = 10 * sim::kGbps;
  icfg.host_rate = 10 * sim::kGbps;
  placement out;
  out.topology = topo::internet2(icfg);
  out.topology.name = "Internet2-fairness";
  out.topology.scale_delays(cfg.prop_delay_scale);

  sim::rng rng(cfg.seed ^ 0xFA17);
  const std::size_t hosts = out.topology.host_count();
  for (int i = 0; i < cfg.flows; ++i) {
    const auto s = rng.next_below(hosts);
    auto d = rng.next_below(hosts - 1);
    if (d >= s) ++d;
    out.pairs.emplace_back(out.topology.host_id(s), out.topology.host_id(d));
    out.starts.push_back(static_cast<sim::time_ps>(
        rng.uniform() * static_cast<double>(cfg.start_jitter)));
  }

  // Count flows crossing each core link (either direction) using a scratch
  // network: routing depends only on delays, which are final already.
  sim::simulator scratch_sim;
  net::network scratch(scratch_sim);
  topo::populate(out.topology, scratch);
  scratch.set_scheduler_factory(
      core::make_factory(core::sched_kind::fifo, 0));
  scratch.build();
  std::map<std::pair<net::node_id, net::node_id>, int> crossing;
  for (const auto& [s, d] : out.pairs) {
    const auto& path = scratch.route(s, d);
    for (std::size_t j = 0; j + 1 < path.size(); ++j) {
      const auto a = std::min(path[j], path[j + 1]);
      const auto b = std::max(path[j], path[j + 1]);
      crossing[{a, b}] += 1;
    }
  }
  for (auto& l : out.topology.core_links) {
    const auto a = std::min(l.a, l.b);
    const auto b = std::max(l.a, l.b);
    const auto it = crossing.find({a, b});
    const int n = it == crossing.end() ? 1 : std::max(1, it->second);
    // Only resize links between core routers and core<->edge trunks that
    // carry flows; idle links keep their rate.
    if (it != crossing.end()) l.rate = n * cfg.fair_share;
  }
  return out;
}

}  // namespace

fairness_result run_fairness(fairness_variant v, sim::bits_per_sec r_est,
                             const fairness_config& cfg) {
  auto pl = make_placement(cfg);

  sim::simulator sim;
  net::network net(sim);
  topo::populate(pl.topology, net);
  net.set_buffer_bytes(0);  // paper: buffers kept large
  core::sched_kind kind = core::sched_kind::fifo;
  switch (v) {
    case fairness_variant::fifo: kind = core::sched_kind::fifo; break;
    case fairness_variant::fq: kind = core::sched_kind::fq; break;
    case fairness_variant::lstf: kind = core::sched_kind::lstf; break;
  }
  net.set_scheduler_factory(core::make_factory(kind, cfg.seed, &net));
  net.build();

  transport::tcp_config tcfg;
  tcfg.rto_min = sim::kMillisecond;
  tcfg.rto_init = 5 * sim::kMillisecond;
  tcfg.max_cwnd_pkts = 1'000;  // receive-window stand-in (lossless run)
  transport::tcp_manager tcp(net, tcfg);

  auto vc = std::make_shared<core::fairness_slack>(r_est);
  constexpr std::uint64_t kLongLived = 1ull << 40;  // effectively unbounded
  for (int i = 0; i < cfg.flows; ++i) {
    const std::uint64_t flow_id = 1000 + i;
    transport::header_stamper stamper;
    if (v == fairness_variant::lstf) {
      stamper = [vc, flow_id, &net](net::packet& p) {
        p.slack = vc->next(flow_id, p.size_bytes, net.sim().now());
      };
    }
    tcp.start_flow(flow_id, pl.pairs[i].first, pl.pairs[i].second, kLongLived,
                   pl.starts[i], std::move(stamper));
  }

  fairness_result res;
  res.label = v == fairness_variant::fifo  ? "FIFO"
              : v == fairness_variant::fq  ? "FQ"
                                           : "LSTF";
  res.r_est = v == fairness_variant::lstf ? r_est : 0;

  std::vector<std::uint64_t> last_bytes(cfg.flows, 0);
  for (sim::time_ps t = cfg.sample_every; t <= cfg.horizon;
       t += cfg.sample_every) {
    sim.run_until(t);
    std::vector<double> tput(cfg.flows);
    for (int i = 0; i < cfg.flows; ++i) {
      const std::uint64_t now_bytes = tcp.delivered_bytes(1000 + i);
      tput[i] = static_cast<double>(now_bytes - last_bytes[i]);
      last_bytes[i] = now_bytes;
    }
    res.time_ms.push_back(sim::to_millis(t));
    res.jain.push_back(stats::jain_index(tput));
  }
  res.final_jain = res.jain.empty() ? 0.0 : res.jain.back();
  return res;
}

weighted_fairness_result run_weighted_fairness(double weight,
                                               sim::bits_per_sec r_est,
                                               const fairness_config& cfg) {
  // A single shared bottleneck isolates the weighted allocation: every
  // flow crosses it, and its capacity equals the sum of the per-flow rate
  // estimates, so virtual-clock slack converges each flow to exactly its
  // reservation (class 1's being weight x class 0's).
  const auto weighted_rate =
      static_cast<sim::bits_per_sec>(static_cast<double>(r_est) * weight);
  const int n1 = cfg.flows / 2;
  const int n0 = cfg.flows - n1;
  const sim::bits_per_sec bottleneck =
      n0 * r_est + n1 * weighted_rate;
  auto topology =
      topo::dumbbell(cfg.flows, 10 * sim::kGbps, bottleneck,
                     static_cast<sim::time_ps>(10 * sim::kMicrosecond));

  sim::simulator sim;
  net::network net(sim);
  topo::populate(topology, net);
  net.set_buffer_bytes(0);
  net.set_scheduler_factory(
      core::make_factory(core::sched_kind::lstf, cfg.seed, &net));
  net.build();

  transport::tcp_config tcfg;
  tcfg.rto_min = sim::kMillisecond;
  tcfg.rto_init = 5 * sim::kMillisecond;
  tcfg.max_cwnd_pkts = 1'000;
  transport::tcp_manager tcp(net, tcfg);

  // Odd-indexed flows form class 1 with a weight-scaled rate estimate.
  sim::rng rng(cfg.seed ^ 0x3EA7);
  auto vc0 = std::make_shared<core::fairness_slack>(r_est);
  auto vc1 = std::make_shared<core::fairness_slack>(weighted_rate);
  for (int i = 0; i < cfg.flows; ++i) {
    const std::uint64_t flow_id = 1000 + i;
    auto vc = (i % 2 == 1) ? vc1 : vc0;
    const auto start = static_cast<sim::time_ps>(
        rng.uniform() * static_cast<double>(cfg.start_jitter) / 5.0);
    tcp.start_flow(flow_id, topology.host_id(i),
                   topology.host_id(cfg.flows + i), 1ull << 40, start,
                   [vc, flow_id, &net](net::packet& p) {
                     p.slack =
                         vc->next(flow_id, p.size_bytes, net.sim().now());
                   });
  }

  // Measure class throughput over the second half of the horizon (after
  // convergence).
  sim.run_until(cfg.horizon / 2);
  std::vector<std::uint64_t> mid(cfg.flows);
  for (int i = 0; i < cfg.flows; ++i) mid[i] = tcp.delivered_bytes(1000 + i);
  sim.run_until(cfg.horizon);

  weighted_fairness_result out;
  double class_bytes[2] = {0, 0};
  int class_count[2] = {0, 0};
  for (int i = 0; i < cfg.flows; ++i) {
    const double delta =
        static_cast<double>(tcp.delivered_bytes(1000 + i) - mid[i]);
    class_bytes[i % 2] += delta;
    ++class_count[i % 2];
  }
  const double span_s = sim::to_seconds(cfg.horizon - cfg.horizon / 2);
  out.class0_mbps =
      class_bytes[0] / class_count[0] * 8.0 / span_s / 1e6;
  out.class1_mbps =
      class_bytes[1] / class_count[1] * 8.0 / span_s / 1e6;
  out.measured_ratio =
      out.class0_mbps > 0 ? out.class1_mbps / out.class0_mbps : 0.0;
  return out;
}

}  // namespace ups::exp
