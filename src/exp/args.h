// Minimal CLI flag parsing shared by bench and example binaries.
//
//   --packets=N       override the per-scenario packet budget
//   --seed=N          RNG seed
//   --scale=F         multiply default packet budgets by F
//   --quick           shrink budgets ~10x for smoke runs
//   --utilization=F   override the scenario's target utilization (0 < F < 1)
//   --workload=NAME   traffic source kind: open-loop, paced[:frac],
//                     closed-loop[:outstanding], closed-loop-tcp[:outstanding],
//                     incast[:degree] (see traffic::parse_workload)
//   --dispatch=SPEC   replay fabric backend: serial | thread[:N] |
//                     process[:N] (see dispatch::backend_spec::parse);
//                     empty means the binary's default
//   --fault=SPEC      per-link fault process for the original run:
//                     bernoulli:p | ge:p_g,p_b,r | jam:period_us,duty[,speedup]
//                     (see net::fault_spec::parse); empty means lossless
//   --flow=SPEC       per-link flow control for the original run:
//                     credit:bytes[,rtt_us] | pause:high,low | none
//                     (see net::flow_spec::parse); empty means ungoverned
//   --kill-worker-after=K
//                     fault injection for the process backend: the first
//                     worker SIGKILLs itself after computing its K-th job
//                     but before reporting it (0 = off)
//   --hang-worker-after=K
//                     stall injection for the process backend: the first
//                     worker hangs forever after computing its K-th job
//                     but before reporting it (0 = off); exercises the
//                     coordinator's assign->result watchdog
//   --worker-timeout-ms=N
//                     process-backend watchdog: a worker silent for N ms
//                     after an assignment is classified timed_out and its
//                     range reassigned (0 = backend default)
#pragma once

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ups::exp {

struct args {
  std::uint64_t packets = 0;  // 0: use the experiment default
  std::uint64_t seed = 1;
  double scale = 1.0;
  bool quick = false;
  double utilization = 0.0;  // <= 0: use the experiment default
  std::string workload;      // empty: use the experiment default
  std::string dispatch;      // empty: use the binary's default backend
  std::string fault;         // empty: lossless links
  std::string flow;          // empty: ungoverned links
  std::uint64_t kill_worker_after = 0;  // 0: fault injection off
  std::uint64_t hang_worker_after = 0;  // 0: stall injection off
  std::int64_t worker_timeout_ms = 0;   // 0: backend default

  [[nodiscard]] static args parse(int argc, char** argv) {
    args a;
    for (int i = 1; i < argc; ++i) {
      const std::string s = argv[i];
      if (s.rfind("--packets=", 0) == 0) {
        a.packets = std::strtoull(s.c_str() + 10, nullptr, 10);
      } else if (s.rfind("--seed=", 0) == 0) {
        a.seed = std::strtoull(s.c_str() + 7, nullptr, 10);
      } else if (s.rfind("--scale=", 0) == 0) {
        a.scale = std::strtod(s.c_str() + 8, nullptr);
      } else if (s.rfind("--utilization=", 0) == 0) {
        a.utilization = std::strtod(s.c_str() + 14, nullptr);
      } else if (s.rfind("--workload=", 0) == 0) {
        a.workload = s.substr(11);
      } else if (s.rfind("--dispatch=", 0) == 0) {
        a.dispatch = s.substr(11);
      } else if (s.rfind("--fault=", 0) == 0) {
        a.fault = s.substr(8);
      } else if (s.rfind("--flow=", 0) == 0) {
        a.flow = s.substr(7);
      } else if (s.rfind("--kill-worker-after=", 0) == 0) {
        a.kill_worker_after = std::strtoull(s.c_str() + 20, nullptr, 10);
      } else if (s.rfind("--hang-worker-after=", 0) == 0) {
        a.hang_worker_after = std::strtoull(s.c_str() + 20, nullptr, 10);
      } else if (s.rfind("--worker-timeout-ms=", 0) == 0) {
        a.worker_timeout_ms = std::strtoll(s.c_str() + 20, nullptr, 10);
      } else if (s == "--quick") {
        a.quick = true;
      }
    }
    return a;
  }

  // Applies overrides to an experiment's default budget.
  [[nodiscard]] std::uint64_t budget(std::uint64_t def) const {
    if (packets != 0) return packets;
    double b = static_cast<double>(def) * scale;
    if (quick) b /= 10.0;
    return static_cast<std::uint64_t>(b < 1000 ? 1000 : b);
  }
};

}  // namespace ups::exp
