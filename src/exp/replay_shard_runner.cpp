#include "exp/replay_shard_runner.h"

#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <utility>

namespace ups::exp {

// Kept verbatim for callers that depend on the rethrow semantics; the
// dispatch backends use dispatch::run_jobs (per-slot status) instead.
void parallel_for_jobs(std::size_t jobs, std::size_t threads,
                       const std::function<void(std::size_t)>& body) {
  if (jobs == 0) return;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads > jobs) threads = jobs;
  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(jobs, std::memory_order_relaxed);  // abandon the rest
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<shard_result> run_sharded(const std::vector<shard_task>& tasks,
                                      const shard_options& opt) {
  dispatch::backend_spec spec;
  spec.kind = dispatch::backend_kind::thread;
  spec.workers = opt.threads;
  dispatch::run_report rep =
      dispatch::run(dispatch::job_plan::from_tasks(tasks, opt), spec);
  rep.throw_if_failed();
  return std::move(rep.results);
}

std::vector<shard_replay> run_sharded_disk(const disk_shard_task& task,
                                           const shard_options& opt) {
  dispatch::backend_spec spec;
  spec.kind = dispatch::backend_kind::thread;
  spec.workers = opt.threads;
  dispatch::run_report rep =
      dispatch::run(dispatch::job_plan::from_disk(task, opt), spec);
  rep.throw_if_failed();
  return std::move(rep.disk_replays);
}

}  // namespace ups::exp
