#include "exp/replay_shard_runner.h"

#include <atomic>
#include <chrono>
#include <exception>
#include <mutex>
#include <thread>

namespace ups::exp {

void parallel_for_jobs(std::size_t jobs, std::size_t threads,
                       const std::function<void(std::size_t)>& body) {
  if (jobs == 0) return;
  if (threads == 0) threads = std::thread::hardware_concurrency();
  if (threads > jobs) threads = jobs;
  if (threads <= 1) {
    for (std::size_t i = 0; i < jobs; ++i) body(i);
    return;
  }

  std::atomic<std::size_t> next{0};
  std::mutex err_mutex;
  std::exception_ptr first_error;
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= jobs) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(err_mutex);
        if (!first_error) first_error = std::current_exception();
        next.store(jobs, std::memory_order_relaxed);  // abandon the rest
        return;
      }
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(threads);
  for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

std::vector<shard_result> run_sharded(const std::vector<shard_task>& tasks,
                                      const shard_options& opt) {
  std::vector<shard_result> results(tasks.size());
  std::vector<original_run> originals(tasks.size());

  // Stage 1: one original recording per scenario. Each job builds its own
  // simulator + network inside run_original; nothing is shared.
  parallel_for_jobs(tasks.size(), opt.threads, [&](std::size_t i) {
    const auto t0 = std::chrono::steady_clock::now();
    originals[i] = run_original(tasks[i].sc);
    shard_result& r = results[i];
    r.sc = tasks[i].sc;
    r.trace_packets = originals[i].trace.packets.size();
    r.threshold_T = originals[i].threshold_T;
    r.original_wall_seconds = wall_seconds_since(t0);
    r.original_peak_pool_packets = originals[i].peak_pool_packets;
    r.original_flows_completed = originals[i].flows_completed;
    r.replays.resize(tasks[i].modes.size());
  });

  // Stage 2: replays fan out over (scenario × mode). The recorded traces
  // are shared read-only; every job owns its replay network and writes its
  // pre-assigned result slot, so output order never depends on scheduling.
  std::vector<std::pair<std::size_t, std::size_t>> jobs;  // (task, mode idx)
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    for (std::size_t m = 0; m < tasks[i].modes.size(); ++m) {
      jobs.emplace_back(i, m);
    }
  }
  parallel_for_jobs(jobs.size(), opt.threads, [&](std::size_t j) {
    const auto [i, m] = jobs[j];
    const auto t0 = std::chrono::steady_clock::now();
    shard_replay& out = results[i].replays[m];
    out.mode = tasks[i].modes[m];
    out.result = run_replay(originals[i], out.mode, opt.keep_outcomes,
                            opt.injection);
    out.wall_seconds = wall_seconds_since(t0);
  });
  return results;
}

std::vector<shard_replay> run_sharded_disk(const disk_shard_task& task,
                                           const shard_options& opt) {
  std::vector<shard_replay> results(task.modes.size());
  parallel_for_jobs(task.modes.size(), opt.threads, [&](std::size_t m) {
    const auto t0 = std::chrono::steady_clock::now();
    shard_replay& out = results[m];
    out.mode = task.modes[m];
    out.result =
        run_replay_file(task.trace_path, task.topology, task.threshold_T,
                        out.mode, opt.keep_outcomes, opt.injection);
    out.wall_seconds = wall_seconds_since(t0);
  });
  return results;
}

}  // namespace ups::exp
