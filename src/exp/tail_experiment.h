// §3.2 — tail packet delays (Figure 3): UDP flows on Internet2; LSTF with a
// uniform initial slack (which makes it FIFO+) against FIFO, comparing the
// end-to-end packet delay distribution.
#pragma once

#include <cstdint>
#include <string>

#include "exp/scenario.h"
#include "stats/summary.h"

namespace ups::exp {

struct tail_config {
  topo_kind topo = topo_kind::i2_default;
  double utilization = 0.7;
  std::uint64_t seed = 1;
  std::uint64_t packet_budget = 150'000;
  std::int64_t buffer_bytes = 5'000'000;
};

enum class tail_variant : std::uint8_t { fifo, lstf_uniform_slack };
[[nodiscard]] const char* to_string(tail_variant v);

struct tail_result {
  std::string label;
  stats::sample_set delay_s;  // per-packet end-to-end delay (seconds)
  double mean_s = 0.0;
  double p99_s = 0.0;
  double p999_s = 0.0;
  std::uint64_t drops = 0;
};

[[nodiscard]] tail_result run_tail(tail_variant v, const tail_config& cfg);

}  // namespace ups::exp
