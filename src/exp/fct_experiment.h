// §3.1 — mean flow completion time (Figure 2): TCP flows on the Internet2
// topology with 5 MB buffers; FIFO vs SRPT vs SJF vs LSTF with the
// slack = flow_size × D initialization.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/registry.h"
#include "exp/scenario.h"
#include "transport/tcp.h"

namespace ups::exp {

struct fct_config {
  topo_kind topo = topo_kind::i2_default;
  double utilization = 0.9;
  std::uint64_t seed = 1;
  std::uint64_t packet_budget = 150'000;
  std::int64_t buffer_bytes = 5'000'000;  // paper: 5 MB per router
  // Propagation delays scaled down so flow completion is congestion-
  // dominated rather than RTT-dominated — the regime the paper's
  // hundreds-of-milliseconds FCTs imply (and where scheduling matters).
  double prop_delay_scale = 0.02;
};

struct fct_result {
  std::string label;
  // Bucketed by flow size (upper edges in bytes); Figure 2's x-axis.
  std::vector<std::uint64_t> bucket_edges;
  std::vector<double> bucket_mean_fct_s;
  std::vector<std::uint64_t> bucket_counts;
  double overall_mean_fct_s = 0.0;
  std::uint64_t flows = 0;
  std::uint64_t drops = 0;
};

// Scheduler variants of Figure 2.
enum class fct_variant : std::uint8_t { fifo, srpt, sjf, lstf };
[[nodiscard]] const char* to_string(fct_variant v);

[[nodiscard]] fct_result run_fct(fct_variant v, const fct_config& cfg);

[[nodiscard]] std::vector<std::uint64_t> default_fct_buckets();

}  // namespace ups::exp
