// Experiment scenarios: the (topology, utilization, scheduler, workload,
// seed) combinations that make up the paper's Table 1 and figures.
#pragma once

#include <cstdint>
#include <string>

#include "core/registry.h"
#include "exp/args.h"
#include "net/fault.h"
#include "net/flow_control.h"
#include "topo/topology.h"
#include "traffic/source.h"

namespace ups::exp {

enum class topo_kind : std::uint8_t {
  i2_default,  // I2 1Gbps-10Gbps
  i2_1g_1g,
  i2_10g_10g,
  rocketfuel,
  fattree,
};

[[nodiscard]] const char* to_string(topo_kind k);
[[nodiscard]] topo::topology make_topology(topo_kind k);

// Flow-size model. The paper's figures use the heavy-tailed empirical
// distribution; `fixed` gives light, uniform flows whose backlogs drain
// within a few packet times — the steady-state regime where streaming
// injection's O(in-flight) residency shows (open-loop elephant bursts keep
// most of a heavy-tailed trace in the network at once by construction).
enum class flow_dist_kind : std::uint8_t { heavy_tailed, fixed };

struct scenario {
  topo_kind topo = topo_kind::i2_default;
  double utilization = 0.7;
  core::sched_kind sched = core::sched_kind::random;
  std::uint64_t seed = 1;
  std::uint64_t packet_budget = 200'000;
  bool record_hops = false;  // omniscient replay needs per-hop times
  flow_dist_kind flows = flow_dist_kind::heavy_tailed;
  std::uint64_t fixed_flow_bytes = 15'000;  // used when flows == fixed
  // Traffic-source selection: how the calibrated workload enters the
  // network (open-loop bursts, per-flow pacing, bounded-outstanding
  // request-response, or synchronized incast fan-in) plus its knobs.
  traffic::source_kind workload_kind = traffic::source_kind::open_loop;
  traffic::source_tuning workload_spec;
  // Per-link fault process applied to the original run's router-router
  // links (net::fault_spec::parse syntax); disabled by default so
  // zero-loss scenario labels stay byte-identical to pre-fault output.
  net::fault_spec fault;
  // Per-link flow control for the original run (net::flow_spec::parse
  // syntax); disabled by default so ungoverned scenario labels stay
  // byte-identical to pre-flow-control output.
  net::flow_spec flow;

  // Unique across every knob that changes the generated schedule: topology,
  // utilization, scheduler, flow-size distribution, and the workload kind
  // with its active tuning parameters — so result files from different
  // workloads can never collide.
  [[nodiscard]] std::string label() const;
};

// Applies parsed CLI overrides onto a scenario: --seed= always,
// --utilization= when set, --workload= (kind plus any ":knob" suffix) when
// set, --fault= (net::fault_spec::parse syntax) when set, --flow=
// (net::flow_spec::parse syntax) when set. Budget overrides still go
// through args::budget().
void apply_overrides(const args& a, scenario& sc);

}  // namespace ups::exp
