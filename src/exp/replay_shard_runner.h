// Legacy sharded-replay entry points, kept as thin wrappers over the
// unified dispatch-backend API (exp/dispatch/backend.h). The shard structs
// (shard_task, shard_result, disk_shard_task, ...) and wall_seconds_since
// now live in backend.h; this header re-exports them for old includes.
//
// New code should build a dispatch::job_plan and call dispatch::run with a
// backend_spec — that is the same thread pool plus a serial reference and a
// multi-process fabric behind one interface, with per-job status instead of
// first-exception-wins abandonment.
#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "exp/dispatch/backend.h"

namespace ups::exp {

// Deprecated: wraps dispatch::run on the thread backend (opt.threads wide)
// and throws the first failing job's error, approximating the old rethrow
// contract. Note the exception is a std::runtime_error carrying the
// original message, not the original exception object.
[[nodiscard]] std::vector<shard_result> run_sharded(
    const std::vector<shard_task>& tasks, const shard_options& opt = {});

// Deprecated: same wrapper for one on-disk trace fanned across modes.
[[nodiscard]] std::vector<shard_replay> run_sharded_disk(
    const disk_shard_task& task, const shard_options& opt = {});

// Deprecated: the old pool primitive with first-exception-wins abandonment
// (a throwing job rethrows on the caller and the rest of the jobs are
// dropped). Prefer dispatch::run_jobs, which records a per-slot status and
// always runs the whole range.
void parallel_for_jobs(std::size_t jobs, std::size_t threads,
                       const std::function<void(std::size_t)>& body);

}  // namespace ups::exp
