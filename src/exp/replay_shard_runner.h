// Sharded replay harness: fans independent (scenario × seed × replay-mode)
// runs across a fixed thread pool, so a full Table-1-style sweep uses every
// core while the deterministic single-threaded kernel stays untouched.
//
// Each worker owns its own simulator, packet pool, and network (replay_trace
// and run_original construct them per call), and every job writes into a
// pre-sized slot of the result vector — so the output is byte-identical to
// running the same jobs in a serial loop, independent of thread count or
// interleaving. Two stages: originals are recorded once per scenario
// (stage 1, parallel over scenarios), then replays fan out over
// (original × mode) (stage 2, parallel over both axes).
#pragma once

#include <chrono>
#include <cstddef>
#include <functional>
#include <vector>

#include "core/replay.h"
#include "exp/replay_experiment.h"
#include "exp/scenario.h"

namespace ups::exp {

// Wall-clock helper shared by the harness and the macro bench.
[[nodiscard]] inline double wall_seconds_since(
    std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// One shard: record this scenario's original schedule, then replay it with
// each candidate mode.
struct shard_task {
  scenario sc;
  std::vector<core::replay_mode> modes;
};

struct shard_replay {
  core::replay_mode mode = core::replay_mode::lstf;
  core::replay_result result;
  double wall_seconds = 0;  // this replay's own wall-clock, informational
};

struct shard_result {
  scenario sc;
  std::uint64_t trace_packets = 0;
  sim::time_ps threshold_T = 0;
  double original_wall_seconds = 0;
  // Original-run in-flight residency (pool high-water mark) and source
  // accounting, so per-workload sweeps can compare steady-state behavior
  // across source kinds without rerunning the originals.
  std::uint64_t original_peak_pool_packets = 0;
  std::uint64_t original_flows_completed = 0;
  std::vector<shard_replay> replays;  // same order as the task's modes
};

struct shard_options {
  std::size_t threads = 0;  // 0: std::thread::hardware_concurrency()
  bool keep_outcomes = false;
  core::injection_mode injection = core::injection_mode::streaming;
};

// Runs every task and returns results in task order. Worker exceptions are
// rethrown on the calling thread (first one wins; remaining jobs are
// abandoned).
[[nodiscard]] std::vector<shard_result> run_sharded(
    const std::vector<shard_task>& tasks, const shard_options& opt = {});

// One on-disk trace fanned across candidate replay modes. Every worker
// opens its own cursor over the same path; for a v2 binary trace that is a
// read-only shared mapping, so N workers replaying the trace touch one
// physical copy and zero parse work — the disk analogue of run_sharded's
// stage 2.
struct disk_shard_task {
  std::string trace_path;
  topo::topology topology;
  sim::time_ps threshold_T = 0;
  std::vector<core::replay_mode> modes;
};

// Replays the task's modes in parallel; results come back in mode order,
// byte-identical to a serial loop over run_replay_file.
[[nodiscard]] std::vector<shard_replay> run_sharded_disk(
    const disk_shard_task& task, const shard_options& opt = {});

// The underlying pool primitive, exposed for other experiment drivers:
// executes body(0..jobs-1), work-stealing via an atomic cursor, on
// min(threads, jobs) threads (inline when that is <= 1).
void parallel_for_jobs(std::size_t jobs, std::size_t threads,
                       const std::function<void(std::size_t)>& body);

}  // namespace ups::exp
