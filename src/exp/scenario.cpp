#include "exp/scenario.h"

#include <stdexcept>

#include "topo/fattree.h"
#include "topo/internet2.h"
#include "topo/rocketfuel.h"

namespace ups::exp {

const char* to_string(topo_kind k) {
  switch (k) {
    case topo_kind::i2_default: return "I2 1Gbps-10Gbps";
    case topo_kind::i2_1g_1g: return "I2 1Gbps-1Gbps";
    case topo_kind::i2_10g_10g: return "I2 10Gbps-10Gbps";
    case topo_kind::rocketfuel: return "RocketFuel";
    case topo_kind::fattree: return "Datacenter";
  }
  return "?";
}

topo::topology make_topology(topo_kind k) {
  switch (k) {
    case topo_kind::i2_default: return topo::internet2_1g_10g();
    case topo_kind::i2_1g_1g: return topo::internet2_1g_1g();
    case topo_kind::i2_10g_10g: return topo::internet2_10g_10g();
    case topo_kind::rocketfuel: return topo::rocketfuel();
    case topo_kind::fattree: return topo::fattree();
  }
  throw std::logic_error("unhandled topology kind");
}

std::string scenario::label() const {
  return std::string(to_string(topo)) + " @" +
         std::to_string(static_cast<int>(utilization * 100)) + "% " +
         core::to_string(sched);
}

}  // namespace ups::exp
