#include "exp/scenario.h"

#include <cstdio>
#include <stdexcept>

#include "topo/fattree.h"
#include "topo/internet2.h"
#include "topo/rocketfuel.h"

namespace ups::exp {

const char* to_string(topo_kind k) {
  switch (k) {
    case topo_kind::i2_default: return "I2 1Gbps-10Gbps";
    case topo_kind::i2_1g_1g: return "I2 1Gbps-1Gbps";
    case topo_kind::i2_10g_10g: return "I2 10Gbps-10Gbps";
    case topo_kind::rocketfuel: return "RocketFuel";
    case topo_kind::fattree: return "Datacenter";
  }
  return "?";
}

topo::topology make_topology(topo_kind k) {
  switch (k) {
    case topo_kind::i2_default: return topo::internet2_1g_10g();
    case topo_kind::i2_1g_1g: return topo::internet2_1g_1g();
    case topo_kind::i2_10g_10g: return topo::internet2_10g_10g();
    case topo_kind::rocketfuel: return topo::rocketfuel();
    case topo_kind::fattree: return topo::fattree();
  }
  throw std::logic_error("unhandled topology kind");
}

std::string scenario::label() const {
  std::string s = std::string(to_string(topo)) + " @" +
                  std::to_string(static_cast<int>(utilization * 100)) + "% " +
                  core::to_string(sched);
  // Flow-size distribution knob: "heavy" vs "fixed<bytes>B" — scenarios
  // differing only here used to collide.
  if (flows == flow_dist_kind::fixed) {
    s += " fixed" + std::to_string(fixed_flow_bytes) + "B";
  } else {
    s += " heavy";
  }
  // Workload kind plus the tuning knobs that shape its schedule.
  s += " ";
  s += traffic::to_string(workload_kind);
  char knob[48];
  switch (workload_kind) {
    case traffic::source_kind::open_loop:
      break;
    case traffic::source_kind::paced:
      std::snprintf(knob, sizeof(knob), ":%g", workload_spec.pacing_fraction);
      s += knob;
      break;
    case traffic::source_kind::closed_loop:
      std::snprintf(knob, sizeof(knob), "%s:%u",
                    workload_spec.via_tcp ? "-tcp" : "",
                    workload_spec.outstanding);
      s += knob;
      break;
    case traffic::source_kind::incast:
      std::snprintf(knob, sizeof(knob), ":%uj%gus",
                    workload_spec.incast_degree,
                    sim::to_micros(workload_spec.barrier_jitter));
      s += knob;
      break;
    case traffic::source_kind::mixed:
      std::snprintf(knob, sizeof(knob), ":%u:%u:%g",
                    workload_spec.incast_degree, workload_spec.outstanding,
                    workload_spec.incast_share);
      s += knob;
      break;
  }
  // Fault tag only when a fault process is active: zero-loss labels must
  // stay byte-identical to output from before faults existed.
  if (fault.enabled()) {
    s += " ";
    s += fault.label();
  }
  // Same rule for flow control: ungoverned labels stay byte-identical to
  // output from before backpressure existed.
  if (flow.enabled()) {
    s += " ";
    s += flow.label();
  }
  return s;
}

void apply_overrides(const args& a, scenario& sc) {
  sc.seed = a.seed;
  if (a.utilization > 0) sc.utilization = a.utilization;
  if (!a.workload.empty()) {
    sc.workload_kind = traffic::parse_workload(a.workload, sc.workload_spec);
  }
  if (!a.fault.empty()) sc.fault = net::fault_spec::parse(a.fault);
  if (!a.flow.empty()) sc.flow = net::flow_spec::parse(a.flow);
}

}  // namespace ups::exp
