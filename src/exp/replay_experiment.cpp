#include "exp/replay_experiment.h"

#include <memory>

#include "net/network.h"
#include "net/trace_io.h"
#include "sim/simulator.h"
#include "traffic/size_dist.h"
#include "traffic/source.h"
#include "traffic/workload.h"

namespace ups::exp {

original_run run_original(const scenario& sc) {
  original_run out;
  out.topology = make_topology(sc.topo);
  // Adversarial jamming with speedup: the network compensates for the jammed
  // duty cycle by running its core links faster. Scaling the stored topology
  // (not the built network) keeps original and replay on identical rates —
  // the replay net is populated from out.topology too.
  if (sc.fault.kind == net::fault_kind::jam && sc.fault.jam_speedup > 1.0) {
    for (auto& l : out.topology.core_links) {
      l.rate = static_cast<sim::bits_per_sec>(
          static_cast<double>(l.rate) * sc.fault.jam_speedup);
    }
  }
  out.threshold_T =
      sim::transmission_time(1500, out.topology.bottleneck_rate());

  sim::simulator sim;
  net::network net(sim);
  topo::populate(out.topology, net);
  net.set_buffer_bytes(0);  // paper: buffers large enough for no drops
  net.set_scheduler_factory(core::make_factory(sc.sched, sc.seed, &net));
  net.set_fault(sc.fault, sc.seed);
  net.set_flow(sc.flow);
  net.build();

  net::trace_recorder recorder(net, sc.record_hops);

  std::unique_ptr<traffic::flow_size_dist> dist;
  if (sc.flows == flow_dist_kind::fixed) {
    dist = std::make_unique<traffic::fixed_size>(sc.fixed_flow_bytes);
  } else {
    dist = traffic::default_heavy_tailed();
  }
  traffic::workload_config wcfg;
  wcfg.utilization = sc.utilization;
  wcfg.seed = sc.seed;
  wcfg.packet_budget = sc.packet_budget;
  traffic::source_options sopt;
  sopt.record_hops = sc.record_hops;
  auto made =
      traffic::make_source(net, out.topology, *dist, wcfg, sc.workload_kind,
                           sc.workload_spec, std::move(sopt));
  out.per_host_rate_bps = made.per_host_rate_bps;

  sim.run();
  out.peak_pool_packets = net.pool().created();
  out.peak_event_slots = sim.slot_capacity();
  out.flows_completed = made.src->flows_completed();
  out.peak_outstanding_flows = made.src->peak_outstanding();
  out.trace = recorder.take();
  return out;
}

core::replay_result run_replay(const original_run& orig,
                               core::replay_mode mode, bool keep_outcomes,
                               core::injection_mode injection,
                               const net::flow_spec& flow) {
  core::replay_options opt;
  opt.mode = mode;
  opt.threshold_T = orig.threshold_T;
  opt.keep_outcomes = keep_outcomes;
  opt.injection = injection;
  opt.flow = flow;
  const auto& topology = orig.topology;
  return core::replay_trace(
      orig.trace,
      [&topology](net::network& n) { topo::populate(topology, n); }, opt);
}

core::replay_result run_replay_file(const std::string& trace_path,
                                    const topo::topology& topology,
                                    sim::time_ps threshold_T,
                                    core::replay_mode mode,
                                    bool keep_outcomes,
                                    core::injection_mode injection,
                                    net::trace_access access,
                                    const net::flow_spec& flow) {
  core::replay_options opt;
  opt.mode = mode;
  opt.threshold_T = threshold_T;
  opt.keep_outcomes = keep_outcomes;
  opt.injection = injection;
  opt.flow = flow;
  const auto cur = net::open_trace_cursor(trace_path, access);
  return core::replay_trace(
      *cur, [&topology](net::network& n) { topo::populate(topology, n); },
      opt);
}

core::replay_result table1_row(const scenario& sc) {
  const auto orig = run_original(sc);
  return run_replay(orig, core::replay_mode::lstf, false);
}

}  // namespace ups::exp
