#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace ups::stats {

void sample_set::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double sample_set::mean() const {
  if (samples_.empty()) return 0.0;
  return std::accumulate(samples_.begin(), samples_.end(), 0.0) /
         static_cast<double>(samples_.size());
}

double sample_set::quantile(double q) const {
  if (samples_.empty()) throw std::logic_error("quantile of empty sample set");
  ensure_sorted();
  if (q <= 0.0) return samples_.front();
  if (q >= 1.0) return samples_.back();
  const double idx = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

double sample_set::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<sample_set::point> sample_set::cdf_points(std::size_t n) const {
  ensure_sorted();
  std::vector<point> out;
  if (samples_.empty() || n == 0) return out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(n - 1);
    out.push_back(point{quantile(q), q});
  }
  return out;
}

double jain_index(const std::vector<double>& x) {
  if (x.empty()) return 1.0;
  double sum = 0.0;
  double sq = 0.0;
  for (const double v : x) {
    sum += v;
    sq += v * v;
  }
  if (sq == 0.0) return 1.0;
  return sum * sum / (static_cast<double>(x.size()) * sq);
}

}  // namespace ups::stats
