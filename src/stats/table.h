// ASCII table/series rendering for the bench binaries: the benches print
// the same rows and series the paper's tables and figures report.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace ups::stats {

class table {
 public:
  explicit table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print(std::ostream& os) const;

  // Formatting helpers.
  [[nodiscard]] static std::string fmt(double v, int precision = 4);
  [[nodiscard]] static std::string fmt_frac(double v);  // paper-style 0.0021
  [[nodiscard]] static std::string fmt_pct(double v, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ups::stats
