// Sample collection with quantiles, CDF/CCDF extraction and moments.
#pragma once

#include <cstddef>
#include <vector>

namespace ups::stats {

class sample_set {
 public:
  void add(double v) {
    samples_.push_back(v);
    sorted_ = false;
  }
  void reserve(std::size_t n) { samples_.reserve(n); }

  [[nodiscard]] std::size_t size() const noexcept { return samples_.size(); }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }
  [[nodiscard]] double mean() const;
  [[nodiscard]] double quantile(double q) const;  // q in [0, 1]
  [[nodiscard]] double min() const { return quantile(0.0); }
  [[nodiscard]] double max() const { return quantile(1.0); }

  // Fraction of samples <= x.
  [[nodiscard]] double cdf_at(double x) const;
  // Fraction of samples > x (complementary CDF).
  [[nodiscard]] double ccdf_at(double x) const { return 1.0 - cdf_at(x); }

  // n evenly spaced (value, cumulative fraction) points for plotting.
  struct point {
    double value;
    double fraction;
  };
  [[nodiscard]] std::vector<point> cdf_points(std::size_t n) const;

  [[nodiscard]] const std::vector<double>& values() const noexcept {
    return samples_;
  }

 private:
  void ensure_sorted() const;

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

// Jain's fairness index over per-entity allocations:
// J = (sum x)^2 / (n * sum x^2); 1.0 = perfectly fair.
[[nodiscard]] double jain_index(const std::vector<double>& x);

}  // namespace ups::stats
