#include "stats/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace ups::stats {

table::table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << "| " << row[c];
      for (std::size_t k = row[c].size(); k < width[c] + 1; ++k) os << ' ';
    }
    os << "|\n";
  };
  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << "|";
    for (std::size_t k = 0; k < width[c] + 2; ++k) os << '-';
  }
  os << "|\n";
  for (const auto& row : rows_) print_row(row);
}

std::string table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string table::fmt_frac(double v) {
  if (v == 0.0) return "0.0";
  if (v < 1e-4) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.1e", v);
    return buf;
  }
  return fmt(v, 4);
}

std::string table::fmt_pct(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v * 100.0);
  return buf;
}

}  // namespace ups::stats
