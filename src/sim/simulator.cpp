#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

namespace ups::sim {

void simulator::throw_past_schedule() {
  throw std::logic_error("simulator: scheduling into the past");
}

void simulator::throw_slab_exhausted() {
  throw std::length_error("simulator: more than 2^24 concurrent events");
}

void simulator::cancel(handle h) {
  if (!h.valid()) return;
  const std::uint32_t slot =
      static_cast<std::uint32_t>((h.id & kSlotMask) - 1);
  const std::uint64_t generation = h.id >> kSlotBits;
  if (slot >= slots_.size()) return;
  event_slot& s = slots_[slot];
  // A stale handle (event already ran or was cancelled, slot possibly
  // reused) fails the generation check and is ignored.
  if (s.generation != generation || !s.queued || s.cancelled) return;
  s.cancelled = true;
  s.cb.reset();  // release captures now; the heap entry purges lazily
  assert(live_ > 0);
  --live_;
}

void simulator::run() {
  while (run_next()) {
  }
}

void simulator::run_until(time_ps t) {
  purge_cancelled_top();
  while (!heap_.empty() && heap_[0].at <= t) {
    run_next();
    purge_cancelled_top();
  }
  if (now_ < t) now_ = t;
}

void simulator::purge_cancelled_top() {
  while (!heap_.empty() && slots_[heap_[0].slot].cancelled) {
    const std::uint32_t slot = heap_[0].slot;
    heap_pop_top();
    retire(slot);
  }
}

}  // namespace ups::sim
