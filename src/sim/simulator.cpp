#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace ups::sim {

simulator::handle simulator::schedule_at(time_ps t, callback cb) {
  if (t < now_) throw std::logic_error("simulator: scheduling into the past");
  const std::uint64_t id = next_id_++;
  queue_.push(entry{t, 0, id, std::move(cb)});
  return handle{id};
}

simulator::handle simulator::schedule_late(time_ps t, callback cb) {
  if (t < now_) throw std::logic_error("simulator: scheduling into the past");
  const std::uint64_t id = next_id_++;
  queue_.push(entry{t, 1, id, std::move(cb)});
  return handle{id};
}

void simulator::cancel(handle h) {
  if (h.valid()) cancelled_.insert(h.id);
}

bool simulator::run_next() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the callback is moved out via const_cast,
    // which is safe because the entry is popped before the callback runs.
    entry e = std::move(const_cast<entry&>(queue_.top()));
    queue_.pop();
    if (auto it = cancelled_.find(e.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    assert(e.at >= now_);
    now_ = e.at;
    ++processed_;
    e.cb();
    return true;
  }
  return false;
}

void simulator::run() {
  while (run_next()) {
  }
}

void simulator::run_until(time_ps t) {
  while (!queue_.empty() && queue_.top().at <= t) {
    run_next();
  }
  if (now_ < t) now_ = t;
}

}  // namespace ups::sim
