#include "sim/simulator.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>

namespace ups::sim {

namespace {
// Bucket chains are pointer walks over a slab that can dwarf the cache at
// RocketFuel-scale pending sets; fetching the next node while the current
// one is processed hides most of the miss latency.
inline void prefetch(const void* p) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(p);
#else
  (void)p;
#endif
}
}  // namespace

void simulator::throw_past_schedule() {
  throw std::logic_error("simulator: scheduling into the past");
}

void simulator::throw_slab_exhausted() {
  throw std::length_error("simulator: more than 2^24 concurrent events");
}

simulator::handle simulator::schedule(time_ps t, std::uint8_t phase,
                                      callback cb) {
  if (t < now_) {
    throw_past_schedule();
  }
  std::uint32_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    if (slots_.size() >= kSlotMask) {
      throw_slab_exhausted();
    }
    slot = static_cast<std::uint32_t>(slots_.size());
    slots_.emplace_back();
    // The freelist can never exceed the slab, so growing its reservation in
    // lockstep pins steady state at exactly zero allocations even when
    // retirements arrive in bucket-sized bursts.
    free_slots_.reserve(slots_.capacity());
  }
  event_slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.queued = true;
  s.cancelled = false;
  s.at = t;
  s.order = (static_cast<std::uint64_t>(phase) << 62) | next_seq_++;
  if (ready_active() && t == ready_time_) {
    // Scheduled for the instant currently being dispatched (t == now_):
    // join the live run at the (phase, seq) position a global priority
    // queue would dispatch it at. Entries already run have been popped, so
    // only the pending tail [ready_pos_, end) — sorted by order — shifts.
    const auto it = std::lower_bound(
        ready_.begin() + static_cast<std::ptrdiff_t>(ready_pos_),
        ready_.end(), s.order,
        [](const wheel_entry& x, std::uint64_t o) { return x.order < o; });
    ready_.insert(it, wheel_entry{t, s.order, slot});
  } else {
    place(slot);
  }
  ++live_;
  return handle{(s.generation << kSlotBits) |
                (static_cast<std::uint64_t>(slot) + 1)};
}

void simulator::cancel(handle h) {
  if (!h.valid()) return;
  const std::uint32_t slot =
      static_cast<std::uint32_t>((h.id & kSlotMask) - 1);
  const std::uint64_t generation = h.id >> kSlotBits;
  if (slot >= slots_.size()) return;
  event_slot& s = slots_[slot];
  // A stale handle (event already ran or was cancelled, slot possibly
  // reused) fails the generation check and is ignored.
  if (s.generation != generation || !s.queued || s.cancelled) return;
  s.cancelled = true;
  s.cb.reset();  // release captures now; the wheel entry purges lazily
  assert(live_ > 0);
  --live_;
}

int simulator::level_for(time_ps t) const noexcept {
  assert(t >= cur_);
  const std::uint64_t diff =
      static_cast<std::uint64_t>(t) ^ static_cast<std::uint64_t>(cur_);
  if (diff == 0) return 0;
  return (63 - std::countl_zero(diff)) / kWheelBits;
}

void simulator::place(std::uint32_t slot) {
  event_slot& s = slots_[slot];
  const int level = level_for(s.at);
  if (level >= kWheelLevels) {
    overflow_push(wheel_entry{s.at, s.order, slot});
    return;
  }
  const int idx = static_cast<int>(
      (static_cast<std::uint64_t>(s.at) >> (kWheelBits * level)) &
      (kWheelSlots - 1));
  std::uint32_t& head =
      bucket_head_[static_cast<std::size_t>(level * kWheelSlots + idx)];
  s.next = head;
  head = slot;
  occupied_[static_cast<std::size_t>(level * kBitmapWords + idx / 64)] |=
      1ull << (idx % 64);
}

int simulator::first_occupied(int level, int from) const noexcept {
  int word = from / 64;
  std::uint64_t m =
      occupied_[static_cast<std::size_t>(level * kBitmapWords + word)] &
      (~0ull << (from % 64));
  for (;;) {
    if (m != 0) return word * 64 + std::countr_zero(m);
    if (++word == kBitmapWords) return -1;
    m = occupied_[static_cast<std::size_t>(level * kBitmapWords + word)];
  }
}

void simulator::clear_occupied(int level, int idx) noexcept {
  occupied_[static_cast<std::size_t>(level * kBitmapWords + idx / 64)] &=
      ~(1ull << (idx % 64));
}

void simulator::migrate_overflow() {
  while (!overflow_.empty()) {
    const wheel_entry top = overflow_[0];
    if (slots_[top.slot].cancelled) {
      retire(top.slot);
      overflow_pop_top();
      continue;
    }
    if (level_for(top.at) >= kWheelLevels) break;
    overflow_pop_top();
    place(top.slot);
  }
}

bool simulator::refill_ready(time_ps limit) {
  ready_.clear();
  ready_pos_ = 0;
  for (;;) {
    // Overflow events never precede wheel events (they live in a later
    // top-level window), so pulling the ones that now fit before searching
    // keeps the wheel complete up to its span.
    migrate_overflow();
    const int idx0 = first_occupied(0, static_cast<int>(
                                           cur_ & (kWheelSlots - 1)));
    if (idx0 >= 0) {
      // Level-0 buckets are one tick wide: every entry shares this exact
      // timestamp, so the bucket *is* the same-instant run.
      const time_ps t =
          (cur_ & ~static_cast<time_ps>(kWheelSlots - 1)) | idx0;
      if (t > limit) return false;
      clear_occupied(0, idx0);
      cur_ = t;
      std::uint32_t n = bucket_head_[static_cast<std::size_t>(idx0)];
      bucket_head_[static_cast<std::size_t>(idx0)] = kNilSlot;
      while (n != kNilSlot) {
        const std::uint32_t next = slots_[n].next;
        if (next != kNilSlot) prefetch(&slots_[next]);
        if (slots_[n].cancelled) {
          retire(n);
        } else {
          ready_.push_back(wheel_entry{slots_[n].at, slots_[n].order, n});
        }
        n = next;
      }
      if (ready_.empty()) continue;  // bucket was fully cancelled
      if (ready_.size() > 1) {
        std::sort(ready_.begin(), ready_.end(),
                  [](const wheel_entry& a, const wheel_entry& b_) {
                    return a.order < b_.order;
                  });
      }
      ready_time_ = t;
      return true;
    }
    int level = 0;
    int idx = -1;
    for (int l = 1; l < kWheelLevels; ++l) {
      idx = first_occupied(l, 0);
      if (idx >= 0) {
        level = l;
        break;
      }
    }
    if (level != 0) {
      // Cascade: the first occupied bucket of the lowest occupied level
      // holds the earliest pending events (lower levels are empty and
      // higher levels cover strictly later slots). Advance the wheel clock
      // to the bucket's start and redistribute its entries downward.
      const int shift = kWheelBits * level;
      const time_ps window_mask =
          (static_cast<time_ps>(1) << (shift + kWheelBits)) - 1;
      const time_ps start =
          (cur_ & ~window_mask) | (static_cast<time_ps>(idx) << shift);
      if (start > limit) return false;
      clear_occupied(level, idx);
      cur_ = start;
      std::uint32_t n =
          bucket_head_[static_cast<std::size_t>(level * kWheelSlots + idx)];
      bucket_head_[static_cast<std::size_t>(level * kWheelSlots + idx)] =
          kNilSlot;
      while (n != kNilSlot) {
        const std::uint32_t next = slots_[n].next;
        if (next != kNilSlot) prefetch(&slots_[next]);
        if (slots_[n].cancelled) {
          retire(n);
        } else {
          place(n);  // lands strictly below `level`
        }
        n = next;
      }
      continue;
    }
    // Wheel empty: jump the clock to the overflow heap's next instant (the
    // migrate at the loop top then pulls everything within span).
    while (!overflow_.empty() && slots_[overflow_[0].slot].cancelled) {
      retire(overflow_[0].slot);
      overflow_pop_top();
    }
    if (overflow_.empty()) {
      // Nothing pending anywhere: rewind the wheel clock to the dispatch
      // clock so intermediate advances past all-cancelled buckets can
      // never strand a future schedule_at(now) behind the wheel.
      cur_ = now_;
      return false;
    }
    if (overflow_[0].at > limit) return false;
    cur_ = overflow_[0].at;
  }
}

std::size_t simulator::run_ready_run() {
  std::size_t n = 0;
  while (ready_pos_ < ready_.size()) {
    const wheel_entry e = ready_[ready_pos_++];
    event_slot& s = slots_[e.slot];
    if (s.cancelled) {
      retire(e.slot);
      continue;
    }
    assert(e.at >= now_);
    now_ = e.at;
    ++processed_;
    --live_;
    callback cb = std::move(s.cb);
    retire(e.slot);
    cb();
    ++n;
  }
  return n;
}

std::size_t simulator::run_instant() {
  std::size_t total = 0;
  for (;;) {
    if (ready_pos_ >= ready_.size() && !refill_ready(kNoLimit)) return total;
    total += run_ready_run();
    // An event chain-scheduled by the *last* callback of the run lands in a
    // fresh bucket at the same instant; the limit-capped refill pulls it
    // (and anything it chains) without ever advancing the wheel clock past
    // this instant.
    const time_ps t = ready_time_;
    while (refill_ready(t)) {
      total += run_ready_run();
    }
    if (total > 0) return total;
    // A fully cancelled-after-materialize run: consume the next instant.
  }
}

void simulator::run() {
  // One refill (bucket pull + sort) per instant, then straight-line pops.
  while (run_next()) {
  }
}

void simulator::run_until(time_ps t) {
  while (ready_active() ? ready_time_ <= t : refill_ready(t)) {
    run_ready_run();
  }
  if (now_ < t) now_ = t;
}

void simulator::overflow_push(wheel_entry e) {
  std::size_t pos = overflow_.size();
  overflow_.push_back(e);
  while (pos > 0) {
    const std::size_t up = (pos - 1) / kArity;
    if (!before(e, overflow_[up])) break;
    overflow_[pos] = overflow_[up];
    pos = up;
  }
  overflow_[pos] = e;
}

void simulator::overflow_pop_top() {
  const wheel_entry filler = overflow_.back();
  overflow_.pop_back();
  const std::size_t n = overflow_.size();
  if (n == 0) return;
  std::size_t pos = 0;
  for (;;) {
    const std::size_t first = pos * kArity + 1;
    if (first >= n) break;
    const std::size_t last = first + kArity < n ? first + kArity : n;
    std::size_t best = first;
    for (std::size_t c = first + 1; c < last; ++c) {
      if (before(overflow_[c], overflow_[best])) best = c;
    }
    if (!before(overflow_[best], filler)) break;
    overflow_[pos] = overflow_[best];
    pos = best;
  }
  overflow_[pos] = filler;
}

}  // namespace ups::sim
