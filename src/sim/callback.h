// Small-buffer-optimized move-only callable for simulator events.
//
// Every steady-state event callback in the simulator (port completions,
// service decisions, in-flight deliveries, TCP timers) captures a handful of
// words, so storing them inline in the event slot makes scheduling an event
// allocation-free. Callables larger than the inline buffer fall back to the
// heap; unlike std::function, move-only callables are accepted.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace ups::sim {

class inline_callback {
 public:
  // Sized to hold a std::function<void()> copy (32 bytes on libstdc++) and
  // every capture set the simulator's own layers use, with room to spare.
  static constexpr std::size_t kInlineBytes = 48;

  inline_callback() noexcept = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, inline_callback> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  inline_callback(F&& f) {  // NOLINT(google-explicit-constructor)
    using target = std::remove_cvref_t<F>;
    if constexpr (fits_inline<target>) {
      ::new (static_cast<void*>(storage_)) target(std::forward<F>(f));
      ops_ = &inline_ops<target>::kOps;
    } else {
      ::new (static_cast<void*>(storage_))
          target*(new target(std::forward<F>(f)));
      ops_ = &boxed_ops<target>::kOps;
    }
  }

  inline_callback(inline_callback&& other) noexcept { take(other); }

  inline_callback& operator=(inline_callback&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  inline_callback(const inline_callback&) = delete;
  inline_callback& operator=(const inline_callback&) = delete;

  ~inline_callback() { reset(); }

  // Matches std::function: invoking an empty callback throws rather than
  // calling through a null operations table.
  void operator()() {
    if (ops_ == nullptr) throw std::bad_function_call();
    ops_->invoke(storage_);
  }

  [[nodiscard]] explicit operator bool() const noexcept {
    return ops_ != nullptr;
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

 private:
  struct ops {
    void (*invoke)(void*);
    // Move-construct into dst from src, then destroy src.
    void (*relocate)(void* dst, void* src) noexcept;
    void (*destroy)(void*) noexcept;
  };

  template <typename T>
  static constexpr bool fits_inline =
      sizeof(T) <= kInlineBytes && alignof(T) <= alignof(std::max_align_t) &&
      std::is_nothrow_move_constructible_v<T>;

  template <typename T>
  struct inline_ops {
    static T* at(void* s) noexcept {
      return std::launder(reinterpret_cast<T*>(s));
    }
    static void invoke(void* s) { (*at(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      ::new (dst) T(std::move(*at(src)));
      at(src)->~T();
    }
    static void destroy(void* s) noexcept { at(s)->~T(); }
    static constexpr ops kOps{&invoke, &relocate, &destroy};
  };

  template <typename T>
  struct boxed_ops {
    static T*& at(void* s) noexcept {
      return *std::launder(reinterpret_cast<T**>(s));
    }
    static void invoke(void* s) { (*at(s))(); }
    static void relocate(void* dst, void* src) noexcept {
      // The stored pointer is trivially destructible: copying it over moves
      // ownership and the source needs no cleanup.
      ::new (dst) T*(at(src));
    }
    static void destroy(void* s) noexcept {
      delete at(s);
      at(s) = nullptr;
    }
    static constexpr ops kOps{&invoke, &relocate, &destroy};
  };

  void take(inline_callback& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(storage_, other.storage_);
      other.ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) std::byte storage_[kInlineBytes];
  const ops* ops_ = nullptr;
};

}  // namespace ups::sim
