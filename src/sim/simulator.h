// Discrete-event simulation kernel.
//
// A single-threaded event loop over a slab of reusable event slots addressed
// by generation-stamped handles, ordered by a 4-ary heap of flat
// (time, phase, sequence) keys. Events scheduled for the same instant run in
// scheduling order, which keeps every simulation deterministic. Steady-state
// scheduling is allocation-free: slots are recycled through a freelist, the
// heap reuses its backing array, and callbacks are stored inline in the slot
// (see sim/callback.h).
//
// Cancellation marks the slot and drops the callback immediately; the dead
// heap entry is discarded when it surfaces. A live-event counter keeps
// empty()/pending() exact, and the slot's generation stamp makes cancelling
// an already-run (or already-cancelled) handle a structural no-op — stale
// handles can never corrupt accounting or leak, by construction.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace ups::sim {

class simulator {
 public:
  using callback = inline_callback;

  // Opaque generation-stamped reference to a scheduled event. `id` packs
  // (generation << 24) | (slot + 1); 0 is the null handle. 24 bits bound
  // the slab at ~16.7M concurrently tracked events (~1 GB of slots, far
  // beyond any experiment) which buys a 40-bit generation: a slot must be
  // reused ~10^12 times before a stale handle could alias a live event.
  struct handle {
    std::uint64_t id = 0;
    [[nodiscard]] bool valid() const noexcept { return id != 0; }
  };

  simulator() = default;
  simulator(const simulator&) = delete;
  simulator& operator=(const simulator&) = delete;

  [[nodiscard]] time_ps now() const noexcept { return now_; }

  handle schedule_at(time_ps t, callback cb) {
    return schedule(t, kPhaseNormal, std::move(cb));
  }

  handle schedule_in(time_ps dt, callback cb) {
    return schedule(now_ + dt, kPhaseNormal, std::move(cb));
  }

  // Runs before every normal event with the same timestamp, regardless of
  // when it was scheduled. Replay injection uses this so that a packet
  // injected at instant t is delivered ahead of same-instant forwarded
  // arrivals whose events were scheduled earlier — exactly the order
  // up-front injection gets for free by pre-scheduling everything, which
  // keeps streaming injection outcome-identical when ranks tie.
  handle schedule_early(time_ps t, callback cb) {
    return schedule(t, kPhaseEarly, std::move(cb));
  }

  // Runs after every normal event with the same timestamp, including normal
  // events those events schedule for the same instant. Ports use this for
  // service decisions so that all same-instant packet arrivals — even those
  // still propagating through zero-delay forwarding chains — are visible to
  // the scheduler before it picks.
  handle schedule_late(time_ps t, callback cb) {
    return schedule(t, kPhaseLate, std::move(cb));
  }

  // Cancels a pending event. Cancelling an already-run, already-cancelled,
  // or unknown handle is a harmless no-op (the generation stamp no longer
  // matches).
  void cancel(handle h);

  // Runs the next pending event; returns false if the queue is empty.
  // Defined inline: this is the innermost loop of every experiment.
  bool run_next() {
    for (;;) {
      if (heap_.empty()) return false;
      const heap_entry top = heap_[0];
      event_slot& s = slots_[top.slot];
      if (s.cancelled) {
        heap_pop_top();
        retire(top.slot);
        continue;
      }
      // Heap-order sanity: a bug in heap_push/heap_pop_top must not be able
      // to silently move simulation time backwards.
      assert(top.at >= now_);
      now_ = top.at;
      ++processed_;
      --live_;
      // Detach the callback and retire the slot *before* invoking, so the
      // callback can freely schedule (possibly into this slot) or cancel.
      callback cb = std::move(s.cb);
      heap_pop_top();
      retire(top.slot);
      cb();
      return true;
    }
  }

  // Runs until the event queue drains.
  void run();

  // Runs events with timestamp <= t, then advances the clock to t.
  void run_until(time_ps t);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }
  // Capacity of the slot slab (high-water mark of concurrently tracked
  // events); exposed for tests and benches.
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slots_.size();
  }

 private:
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kGenMask = (1ull << 40) - 1;
  // Same-instant ordering: early < normal < late, then scheduling order.
  static constexpr std::uint8_t kPhaseEarly = 0;
  static constexpr std::uint8_t kPhaseNormal = 1;
  static constexpr std::uint8_t kPhaseLate = 2;

  struct event_slot {
    callback cb;
    std::uint64_t generation = 0;  // kept within kGenMask; see handle
    bool queued = false;     // owned by the heap (live or awaiting purge)
    bool cancelled = false;  // dead entry: discard when it surfaces
  };

  // Flat sort key: comparisons never touch the slot slab. `order` packs
  // (phase << 62) | seq — phase (2 bits: early/normal/late) dominates, then
  // scheduling order; seq is a process-lifetime counter and cannot reach
  // 2^62.
  struct heap_entry {
    time_ps at;
    std::uint64_t order;
    std::uint32_t slot;
  };
  [[nodiscard]] static bool before(const heap_entry& a,
                                   const heap_entry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.order < b.order;
  }

  static constexpr std::size_t kArity = 4;  // 4-ary heap: half the levels

  handle schedule(time_ps t, std::uint8_t phase, callback cb) {
    if (t < now_) {
      throw_past_schedule();
    }
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      if (slots_.size() >= kSlotMask) {
        throw_slab_exhausted();
      }
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    event_slot& s = slots_[slot];
    s.cb = std::move(cb);
    s.queued = true;
    s.cancelled = false;
    const std::uint64_t order =
        (static_cast<std::uint64_t>(phase) << 62) | next_seq_++;
    heap_push(heap_entry{t, order, slot});
    ++live_;
    return handle{(s.generation << kSlotBits) |
                  (static_cast<std::uint64_t>(slot) + 1)};
  }

  void heap_push(heap_entry e) {
    std::size_t pos = heap_.size();
    heap_.push_back(e);
    while (pos > 0) {
      const std::size_t up = (pos - 1) / kArity;
      if (!before(e, heap_[up])) break;
      heap_[pos] = heap_[up];
      pos = up;
    }
    heap_[pos] = e;
  }

  void heap_pop_top() {
    const heap_entry filler = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t pos = 0;
    for (;;) {
      const std::size_t first = pos * kArity + 1;
      if (first >= n) break;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], filler)) break;
      heap_[pos] = heap_[best];
      pos = best;
    }
    heap_[pos] = filler;
  }

  // Retires a slot: bumps the generation (invalidating outstanding handles)
  // and pushes it onto the freelist.
  void retire(std::uint32_t slot) {
    event_slot& s = slots_[slot];
    s.queued = false;
    s.cancelled = false;
    s.generation = (s.generation + 1) & kGenMask;
    free_slots_.push_back(slot);
  }

  // Discards cancelled entries sitting on top of the heap.
  void purge_cancelled_top();
  [[noreturn]] static void throw_past_schedule();
  [[noreturn]] static void throw_slab_exhausted();

  time_ps now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;  // scheduled and not yet run or cancelled
  std::vector<event_slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<heap_entry> heap_;  // 4-ary min-heap
};

}  // namespace ups::sim
