// Discrete-event simulation kernel.
//
// A single-threaded event loop over a min-heap keyed by (time, sequence).
// Events scheduled for the same instant run in scheduling order, which keeps
// every simulation deterministic. Cancellation is lazy: a cancelled id is
// skipped when it reaches the top of the heap.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"

namespace ups::sim {

class simulator {
 public:
  using callback = std::function<void()>;

  struct handle {
    std::uint64_t id = 0;
    [[nodiscard]] bool valid() const noexcept { return id != 0; }
  };

  simulator() = default;
  simulator(const simulator&) = delete;
  simulator& operator=(const simulator&) = delete;

  [[nodiscard]] time_ps now() const noexcept { return now_; }

  handle schedule_at(time_ps t, callback cb);

  handle schedule_in(time_ps dt, callback cb) {
    return schedule_at(now_ + dt, std::move(cb));
  }

  // Runs after every normal event with the same timestamp, including normal
  // events those events schedule for the same instant. Ports use this for
  // service decisions so that all same-instant packet arrivals — even those
  // still propagating through zero-delay forwarding chains — are visible to
  // the scheduler before it picks.
  handle schedule_late(time_ps t, callback cb);

  // Lazily cancels a pending event. Cancelling an already-run or unknown
  // handle is a harmless no-op.
  void cancel(handle h);

  // Runs the next pending event; returns false if the queue is empty.
  bool run_next();

  // Runs until the event queue drains.
  void run();

  // Runs events with timestamp <= t, then advances the clock to t.
  void run_until(time_ps t);

  [[nodiscard]] bool empty() const noexcept { return queue_.size() == cancelled_.size(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

 private:
  struct entry {
    time_ps at;
    std::uint8_t phase;  // 0: normal, 1: late (after same-time normals)
    std::uint64_t id;
    callback cb;
  };
  struct later {
    bool operator()(const entry& a, const entry& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      if (a.phase != b.phase) return a.phase > b.phase;
      return a.id > b.id;
    }
  };

  time_ps now_ = 0;
  std::uint64_t next_id_ = 1;
  std::uint64_t processed_ = 0;
  std::priority_queue<entry, std::vector<entry>, later> queue_;
  std::unordered_set<std::uint64_t> cancelled_;
};

}  // namespace ups::sim
