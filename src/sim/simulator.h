// Discrete-event simulation kernel.
//
// A single-threaded event loop over a slab of reusable event slots addressed
// by generation-stamped handles, ordered by a hierarchical timing wheel of
// flat (time, phase, sequence) keys. Schedule and dispatch are O(1) amortized
// at any pending-set depth: an event lands in a power-of-two picosecond
// bucket chosen by the position of the highest bit in which its timestamp
// differs from the wheel clock, cascades toward level 0 as time advances
// (at most once per level), and far-future events beyond the wheel span park
// in an overflow 4-ary heap that is migrated into the wheel lazily.
//
// Level-0 buckets are one picosecond wide, so every event in a bucket shares
// an exact timestamp: dispatch pulls the whole bucket as one batched
// same-instant run, sorts it once by (phase, sequence), and pops entries with
// no further ordering work — run_instant() exposes the batch directly,
// mirroring trace_cursor::next_run. Events scheduled *for* the instant being
// dispatched insert into the live run at their (phase, sequence) position,
// which keeps the dispatch order byte-identical to a global (time, phase,
// sequence) priority queue (the previous 4-ary heap kernel survives as
// sim/heap_kernel.h and a fuzz suite asserts the equivalence).
//
// Events scheduled for the same instant run in scheduling order, which keeps
// every simulation deterministic. Steady-state scheduling is allocation-free:
// slots are recycled through a freelist, buckets and the ready run reuse
// their backing arrays, and callbacks are stored inline in the slot (see
// sim/callback.h).
//
// Cancellation marks the slot and drops the callback immediately; the dead
// wheel entry is discarded when its bucket is dispatched or cascaded. A
// live-event counter keeps empty()/pending() exact, and the slot's
// generation stamp makes cancelling an already-run (or already-cancelled)
// handle a structural no-op — stale handles can never corrupt accounting or
// leak, by construction.
#pragma once

#include <array>
#include <cassert>
#include <cstdint>
#include <limits>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace ups::sim {

class simulator {
 public:
  using callback = inline_callback;

  // Opaque generation-stamped reference to a scheduled event. `id` packs
  // (generation << 24) | (slot + 1); 0 is the null handle. 24 bits bound
  // the slab at ~16.7M concurrently tracked events (~1 GB of slots, far
  // beyond any experiment) which buys a 40-bit generation: a slot must be
  // reused ~10^12 times before a stale handle could alias a live event.
  struct handle {
    std::uint64_t id = 0;
    [[nodiscard]] bool valid() const noexcept { return id != 0; }
  };

  simulator() { bucket_head_.fill(kNilSlot); }
  simulator(const simulator&) = delete;
  simulator& operator=(const simulator&) = delete;

  [[nodiscard]] time_ps now() const noexcept { return now_; }

  handle schedule_at(time_ps t, callback cb) {
    return schedule(t, kPhaseNormal, std::move(cb));
  }

  // Relative scheduling. now + dt saturates to the latest representable
  // instant instead of overflowing: an effectively-infinite relative timer
  // (e.g. an idle TCP retransmit clock at WAN scale) parks at the end of
  // time — still cancellable, never wrapping into the past.
  handle schedule_in(time_ps dt, callback cb) {
    return schedule(future_time(now_, dt), kPhaseNormal, std::move(cb));
  }

  // Runs before every normal event with the same timestamp, regardless of
  // when it was scheduled. Replay injection uses this so that a packet
  // injected at instant t is delivered ahead of same-instant forwarded
  // arrivals whose events were scheduled earlier — exactly the order
  // up-front injection gets for free by pre-scheduling everything, which
  // keeps streaming injection outcome-identical when ranks tie.
  handle schedule_early(time_ps t, callback cb) {
    return schedule(t, kPhaseEarly, std::move(cb));
  }

  // Runs after every normal event with the same timestamp, including normal
  // events those events schedule for the same instant. Ports use this for
  // service decisions so that all same-instant packet arrivals — even those
  // still propagating through zero-delay forwarding chains — are visible to
  // the scheduler before it picks.
  handle schedule_late(time_ps t, callback cb) {
    return schedule(t, kPhaseLate, std::move(cb));
  }

  // Cancels a pending event. Cancelling an already-run, already-cancelled,
  // or unknown handle is a harmless no-op (the generation stamp no longer
  // matches).
  void cancel(handle h);

  // Runs the next pending event; returns false if the queue is empty.
  // Defined inline: this is the innermost loop of every experiment. The
  // fast path is a bump of the ready-run cursor; the wheel is only touched
  // when the current instant's batch is exhausted.
  bool run_next() {
    for (;;) {
      if (ready_pos_ >= ready_.size() && !refill_ready(kNoLimit)) {
        return false;
      }
      const wheel_entry e = ready_[ready_pos_++];
      event_slot& s = slots_[e.slot];
      if (s.cancelled) {
        retire(e.slot);
        continue;
      }
      assert(e.at >= now_);
      now_ = e.at;
      ++processed_;
      --live_;
      // Detach the callback and retire the slot *before* invoking, so the
      // callback can freely schedule (possibly into this slot) or cancel.
      callback cb = std::move(s.cb);
      retire(e.slot);
      cb();
      return true;
    }
  }

  // Drains one whole same-instant bucket as a single batched dispatch run —
  // every event at the next pending instant, including events those
  // callbacks chain-schedule for the same instant (they join the live run
  // at their phase/sequence position). Returns the number of events run;
  // 0 means the queue is empty.
  std::size_t run_instant();

  // Runs until the event queue drains, one batched instant at a time.
  void run();

  // Runs events with timestamp <= t, then advances the clock to t.
  void run_until(time_ps t);

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }
  // Capacity of the slot slab (high-water mark of concurrently tracked
  // events); exposed for tests and benches.
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slots_.size();
  }

 private:
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kGenMask = (1ull << 40) - 1;
  // Same-instant ordering: early < normal < late, then scheduling order.
  static constexpr std::uint8_t kPhaseEarly = 0;
  static constexpr std::uint8_t kPhaseNormal = 1;
  static constexpr std::uint8_t kPhaseLate = 2;

  // Wheel geometry: 6 levels of 256 slots. Level l slots are 2^(8l) ps
  // wide, so the wheel spans 2^48 ps (~4.7 simulated minutes) ahead of its
  // clock; anything beyond parks in the overflow heap. Wide levels keep
  // cascades rare (an event placed at level l cascades at most l times, and
  // microsecond-scale timers sit at level 1-2), and a level's occupancy is
  // a 4-word bitmap — "next occupied bucket" is a handful of
  // count-trailing-zeros, never a scan of empty slots.
  static constexpr int kWheelBits = 8;
  static constexpr int kWheelSlots = 1 << kWheelBits;
  static constexpr int kWheelLevels = 6;
  static constexpr int kBitmapWords = kWheelSlots / 64;
  static constexpr std::uint32_t kNilSlot = 0xffffffffu;
  static constexpr time_ps kNoLimit = std::numeric_limits<time_ps>::max();

  // Wheel linkage lives inside the slot: a pending event is exactly one
  // bucket-list node (or one overflow-heap entry), so bucket storage never
  // allocates — a schedule threads the slot onto its bucket's list head.
  // The wheel-walk fields lead the struct so a cascade touches one cache
  // line per slot; the fat callback is only read at dispatch.
  struct event_slot {
    time_ps at = 0;            // absolute timestamp while queued
    std::uint64_t order = 0;   // (phase << 62) | seq while queued
    std::uint64_t generation = 0;   // kept within kGenMask; see handle
    std::uint32_t next = kNilSlot;  // bucket chain link
    bool queued = false;     // owned by the wheel (live or awaiting purge)
    bool cancelled = false;  // dead entry: discard when it surfaces
    callback cb;
  };

  // Flat sort key for the ready run and the overflow heap: comparisons
  // never touch the slot slab. `order` packs (phase << 62) | seq — phase
  // (2 bits: early/normal/late) dominates, then scheduling order; seq is a
  // process-lifetime counter and cannot reach 2^62.
  struct wheel_entry {
    time_ps at;
    std::uint64_t order;
    std::uint32_t slot;
  };
  [[nodiscard]] static bool before(const wheel_entry& a,
                                   const wheel_entry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.order < b.order;
  }

  static constexpr std::size_t kArity = 4;  // overflow heap: half the levels

  [[nodiscard]] static time_ps future_time(time_ps now, time_ps dt) noexcept {
    if (dt > 0 && now > std::numeric_limits<time_ps>::max() - dt) {
      return std::numeric_limits<time_ps>::max();
    }
    return now + dt;
  }

  handle schedule(time_ps t, std::uint8_t phase, callback cb);

  [[nodiscard]] bool ready_active() const noexcept {
    return ready_pos_ < ready_.size();
  }

  // Wheel level for an event at absolute time t relative to the wheel clock
  // cur_ (requires t >= cur_): the level containing the highest bit in
  // which t and cur_ differ. >= kWheelLevels means overflow.
  [[nodiscard]] int level_for(time_ps t) const noexcept;

  // Files a queued slot (at/order already stamped) into its wheel bucket or
  // the overflow heap.
  void place(std::uint32_t slot);

  // First occupied bucket index >= `from` at `level`, or -1.
  [[nodiscard]] int first_occupied(int level, int from) const noexcept;
  void clear_occupied(int level, int idx) noexcept;

  // Pulls overflow events that now fit inside the wheel span.
  void migrate_overflow();

  // Materializes the next pending instant's run into ready_ (sorted by
  // order), advancing the wheel clock and cascading upper levels as needed.
  // Never advances the wheel clock past `limit`; returns false — with the
  // clock <= limit and ready_ empty — when no event at time <= limit
  // exists. Cancelled entries encountered along the way are retired.
  bool refill_ready(time_ps limit);

  // Drains the current ready run (all events share ready_time_); returns
  // the number of events actually run.
  std::size_t run_ready_run();

  void overflow_push(wheel_entry e);
  void overflow_pop_top();

  // Retires a slot: bumps the generation (invalidating outstanding handles)
  // and pushes it onto the freelist.
  void retire(std::uint32_t slot) {
    event_slot& s = slots_[slot];
    s.queued = false;
    s.cancelled = false;
    s.generation = (s.generation + 1) & kGenMask;
    free_slots_.push_back(slot);
  }

  [[noreturn]] static void throw_past_schedule();
  [[noreturn]] static void throw_slab_exhausted();

  time_ps now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;  // scheduled and not yet run or cancelled
  std::vector<event_slot> slots_;
  std::vector<std::uint32_t> free_slots_;

  // Wheel clock: lower bound on the time of every event stored in the wheel
  // (<= now_ whenever user code runs; advances bucket-to-bucket during
  // refill_ready). Bucket membership is relative to this clock.
  time_ps cur_ = 0;
  // Buckets are intrusive lists of slot indices (event_slot::next).
  std::array<std::uint32_t, kWheelLevels * kWheelSlots> bucket_head_;
  std::array<std::uint64_t, kWheelLevels * kBitmapWords> occupied_{};
  std::vector<wheel_entry> overflow_;  // 4-ary min-heap, beyond wheel span

  // The current same-instant dispatch run: entries at ready_time_, sorted
  // ascending by order; ready_pos_ is the next entry to dispatch. Active
  // iff ready_pos_ < ready_.size(), and then ready_time_ == now_.
  std::vector<wheel_entry> ready_;
  std::size_t ready_pos_ = 0;
  time_ps ready_time_ = 0;
};

}  // namespace ups::sim
