// Deterministic random number generation for simulations.
//
// Every stochastic component derives its generator from a scenario seed plus
// a component-specific stream id, so simulations replay byte-identically.
#pragma once

#include <cmath>
#include <cstdint>
#include <random>

namespace ups::sim {

class rng {
 public:
  explicit rng(std::uint64_t seed) : engine_(seed) {}

  // Derive an independent stream (e.g. one per port or per host).
  [[nodiscard]] static rng derive(std::uint64_t seed, std::uint64_t stream) {
    return rng(mix(seed, stream));
  }

  [[nodiscard]] double uniform() { return unit_(engine_); }

  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * unit_(engine_);
  }

  // Uniform integer in [0, n).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t n) {
    return std::uniform_int_distribution<std::uint64_t>(0, n - 1)(engine_);
  }

  [[nodiscard]] double exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // Bounded Pareto on [lo, hi] with shape alpha (heavy-tailed flow sizes).
  [[nodiscard]] double bounded_pareto(double alpha, double lo, double hi) {
    const double u = unit_(engine_);
    const double la = std::pow(lo, alpha);
    const double ha = std::pow(hi, alpha);
    return std::pow(-(u * ha - u * la - ha) / (ha * la), -1.0 / alpha);
  }

  [[nodiscard]] std::uint64_t raw() { return engine_(); }

  [[nodiscard]] std::mt19937_64& engine() { return engine_; }

 private:
  // SplitMix64 step: decorrelates seed/stream pairs.
  [[nodiscard]] static std::uint64_t mix(std::uint64_t seed,
                                         std::uint64_t stream) {
    std::uint64_t z = seed + 0x9E3779B97F4A7C15ull * (stream + 1);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace ups::sim
