// Time representation for the UPS simulator.
//
// All simulation time is integer picoseconds. Every bandwidth used by the
// paper's experiments (multiples of 0.5 Gbps) divides 10^12 evenly, so link
// transmission times are exact integers and replay comparisons such as
// o'(p) <= o(p) never need an epsilon.
#pragma once

#include <cstdint>

namespace ups::sim {

using time_ps = std::int64_t;

inline constexpr time_ps kPicosecond = 1;
inline constexpr time_ps kNanosecond = 1'000;
inline constexpr time_ps kMicrosecond = 1'000'000;
inline constexpr time_ps kMillisecond = 1'000'000'000;
inline constexpr time_ps kSecond = 1'000'000'000'000;

// A time far beyond any simulated horizon, safe to add small offsets to.
inline constexpr time_ps kTimeInfinity = INT64_MAX / 4;

[[nodiscard]] constexpr double to_seconds(time_ps t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kSecond);
}

[[nodiscard]] constexpr double to_millis(time_ps t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMillisecond);
}

[[nodiscard]] constexpr double to_micros(time_ps t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kMicrosecond);
}

[[nodiscard]] constexpr time_ps from_seconds(double s) noexcept {
  return static_cast<time_ps>(s * static_cast<double>(kSecond));
}

}  // namespace ups::sim
