// Reference event kernel: the pre-wheel 4-ary flat-key heap, frozen.
//
// This is the simulator's previous ordering structure (slab of
// generation-stamped slots over a 4-ary min-heap of (time, phase, seq)
// keys), kept verbatim as a self-contained header so that
//   * the randomized kernel-equivalence suite (tests/test_sim_wheel.cpp)
//     can drive both kernels with one fuzz script and assert identical
//     dispatch order, and
//   * bench_micro_queues can measure heap-vs-wheel packets/sec side by
//     side in the same binary (the ratio CI gates on is machine-local).
//
// Production code must use sim::simulator (the timing wheel); nothing
// outside tests and benches should include this header.
#pragma once

#include <cassert>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "sim/callback.h"
#include "sim/time.h"

namespace ups::sim {

class heap_simulator {
 public:
  using callback = inline_callback;

  struct handle {
    std::uint64_t id = 0;
    [[nodiscard]] bool valid() const noexcept { return id != 0; }
  };

  heap_simulator() = default;
  heap_simulator(const heap_simulator&) = delete;
  heap_simulator& operator=(const heap_simulator&) = delete;

  [[nodiscard]] time_ps now() const noexcept { return now_; }

  handle schedule_at(time_ps t, callback cb) {
    return schedule(t, kPhaseNormal, std::move(cb));
  }

  // Saturates on signed overflow of now + dt, mirroring simulator: a
  // far-future relative timer lands at the end of time instead of wrapping
  // into the past (the two kernels must stay dispatch-order identical).
  handle schedule_in(time_ps dt, callback cb) {
    return schedule(future_time(now_, dt), kPhaseNormal, std::move(cb));
  }

  handle schedule_early(time_ps t, callback cb) {
    return schedule(t, kPhaseEarly, std::move(cb));
  }

  handle schedule_late(time_ps t, callback cb) {
    return schedule(t, kPhaseLate, std::move(cb));
  }

  void cancel(handle h) {
    if (!h.valid()) return;
    const std::uint32_t slot =
        static_cast<std::uint32_t>((h.id & kSlotMask) - 1);
    const std::uint64_t generation = h.id >> kSlotBits;
    if (slot >= slots_.size()) return;
    event_slot& s = slots_[slot];
    if (s.generation != generation || !s.queued || s.cancelled) return;
    s.cancelled = true;
    s.cb.reset();
    assert(live_ > 0);
    --live_;
  }

  bool run_next() {
    for (;;) {
      if (heap_.empty()) return false;
      const heap_entry top = heap_[0];
      event_slot& s = slots_[top.slot];
      if (s.cancelled) {
        heap_pop_top();
        retire(top.slot);
        continue;
      }
      assert(top.at >= now_);
      now_ = top.at;
      ++processed_;
      --live_;
      callback cb = std::move(s.cb);
      heap_pop_top();
      retire(top.slot);
      cb();
      return true;
    }
  }

  void run() {
    while (run_next()) {
    }
  }

  void run_until(time_ps t) {
    purge_cancelled_top();
    while (!heap_.empty() && heap_[0].at <= t) {
      run_next();
      purge_cancelled_top();
    }
    if (now_ < t) now_ = t;
  }

  [[nodiscard]] bool empty() const noexcept { return live_ == 0; }
  [[nodiscard]] std::size_t pending() const noexcept { return live_; }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }
  [[nodiscard]] std::size_t slot_capacity() const noexcept {
    return slots_.size();
  }

  // Shared by both kernels: next_time = now + dt, saturating to the latest
  // representable instant instead of overflowing (now >= 0 always, so only
  // the positive direction can wrap).
  [[nodiscard]] static time_ps future_time(time_ps now, time_ps dt) noexcept {
    if (dt > 0 && now > std::numeric_limits<time_ps>::max() - dt) {
      return std::numeric_limits<time_ps>::max();
    }
    return now + dt;
  }

 private:
  static constexpr std::uint64_t kSlotBits = 24;
  static constexpr std::uint64_t kSlotMask = (1ull << kSlotBits) - 1;
  static constexpr std::uint64_t kGenMask = (1ull << 40) - 1;
  static constexpr std::uint8_t kPhaseEarly = 0;
  static constexpr std::uint8_t kPhaseNormal = 1;
  static constexpr std::uint8_t kPhaseLate = 2;

  struct event_slot {
    callback cb;
    std::uint64_t generation = 0;
    bool queued = false;
    bool cancelled = false;
  };

  struct heap_entry {
    time_ps at;
    std::uint64_t order;
    std::uint32_t slot;
  };
  [[nodiscard]] static bool before(const heap_entry& a,
                                   const heap_entry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.order < b.order;
  }

  static constexpr std::size_t kArity = 4;

  handle schedule(time_ps t, std::uint8_t phase, callback cb) {
    if (t < now_) {
      throw std::logic_error("heap_simulator: scheduling into the past");
    }
    std::uint32_t slot;
    if (!free_slots_.empty()) {
      slot = free_slots_.back();
      free_slots_.pop_back();
    } else {
      if (slots_.size() >= kSlotMask) {
        throw std::length_error(
            "heap_simulator: more than 2^24 concurrent events");
      }
      slot = static_cast<std::uint32_t>(slots_.size());
      slots_.emplace_back();
    }
    event_slot& s = slots_[slot];
    s.cb = std::move(cb);
    s.queued = true;
    s.cancelled = false;
    const std::uint64_t order =
        (static_cast<std::uint64_t>(phase) << 62) | next_seq_++;
    heap_push(heap_entry{t, order, slot});
    ++live_;
    return handle{(s.generation << kSlotBits) |
                  (static_cast<std::uint64_t>(slot) + 1)};
  }

  void heap_push(heap_entry e) {
    std::size_t pos = heap_.size();
    heap_.push_back(e);
    while (pos > 0) {
      const std::size_t up = (pos - 1) / kArity;
      if (!before(e, heap_[up])) break;
      heap_[pos] = heap_[up];
      pos = up;
    }
    heap_[pos] = e;
  }

  void heap_pop_top() {
    const heap_entry filler = heap_.back();
    heap_.pop_back();
    const std::size_t n = heap_.size();
    if (n == 0) return;
    std::size_t pos = 0;
    for (;;) {
      const std::size_t first = pos * kArity + 1;
      if (first >= n) break;
      const std::size_t last = first + kArity < n ? first + kArity : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        if (before(heap_[c], heap_[best])) best = c;
      }
      if (!before(heap_[best], filler)) break;
      heap_[pos] = heap_[best];
      pos = best;
    }
    heap_[pos] = filler;
  }

  void retire(std::uint32_t slot) {
    event_slot& s = slots_[slot];
    s.queued = false;
    s.cancelled = false;
    s.generation = (s.generation + 1) & kGenMask;
    free_slots_.push_back(slot);
  }

  void purge_cancelled_top() {
    while (!heap_.empty() && slots_[heap_[0].slot].cancelled) {
      const std::uint32_t slot = heap_[0].slot;
      heap_pop_top();
      retire(slot);
    }
  }

  time_ps now_ = 0;
  std::uint64_t next_seq_ = 1;
  std::uint64_t processed_ = 0;
  std::size_t live_ = 0;
  std::vector<event_slot> slots_;
  std::vector<std::uint32_t> free_slots_;
  std::vector<heap_entry> heap_;
};

}  // namespace ups::sim
