// Bandwidth and size units plus exact link-timing arithmetic.
#pragma once

#include <cstdint>

#include "sim/time.h"

namespace ups::sim {

// Link capacities are bits per second.
using bits_per_sec = std::int64_t;

inline constexpr bits_per_sec kMbps = 1'000'000;
inline constexpr bits_per_sec kGbps = 1'000'000'000;

// Sentinel for "infinitely fast" ports (zero transmission time); used by the
// theory gadgets whose uncongested routers transmit instantaneously.
inline constexpr bits_per_sec kInfiniteRate = INT64_MAX;

// Exact transmission time of `bytes` at `rate` in picoseconds.
// Uses 128-bit intermediate so multi-megabyte sizes cannot overflow.
[[nodiscard]] constexpr time_ps transmission_time(std::int64_t bytes,
                                                  bits_per_sec rate) noexcept {
  const auto bits = static_cast<__int128>(bytes) * 8;
  return static_cast<time_ps>(bits * kSecond / rate);
}

// Bytes that can be transmitted in `t` picoseconds at `rate` (rounded down).
[[nodiscard]] constexpr std::int64_t bytes_in(time_ps t,
                                              bits_per_sec rate) noexcept {
  const auto bits = static_cast<__int128>(t) * rate / kSecond;
  return static_cast<std::int64_t>(bits / 8);
}

}  // namespace ups::sim
